"""Functional machine simulator with checkpoint-based atomic regions.

Implements §3 of the paper: ``aregion_begin`` takes a register checkpoint
and starts buffering stores and tracking the read/write sets; asserts and
hardware conditions (footprint overflow of the best-effort L1 bound,
injected interrupts, injected coherence conflicts, faults) abort the region
— discarding buffered stores, restoring registers, and transferring control
to the alternate PC; ``aregion_end`` commits the buffered stores "at an
instant".  Two architectural registers expose the abort reason and the
aborting instruction's PC to the runtime (here: fields consumed by the
adaptive controller).

Timing is delegated to an optional :class:`repro.hw.timing.TimingModel`
via a per-retired-uop callback; without one the machine runs functionally
(used by fast tests).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from ..faults.injector import FaultInjector, RegionFaultSchedule
from ..obs.tracer import NULL_TRACER
from ..runtime.errors import (
    BoundsError,
    GuestError,
    MonitorStateError,
    NullPointerError,
    VMError,
)
from ..runtime.heap import GuestArray, GuestObject, Heap, Value
from ..runtime.interpreter import compare, guest_div, guest_mod, wrap_int
from ..runtime.locks import FALLBACK_LOCK_ADDRESS, MAIN_THREAD, LockWord
from .codegen import ExecFrame, _trap_error, get_predecoded, machine_compare
from .templatejit import get_jitted, jit_profile
from .config import BASELINE_4WIDE, HardwareConfig
from .isa import (
    ABORT_REASON_CODES,
    HW_ESCALATION_REASONS,
    RETRYABLE_REASONS,
    CompiledMethod,
    MInstr,
    MOp,
)
from .stats import ExecStats, RegionExecution

#: base simulated address for compiled code (pc = code base + index).
CODE_BASE = 0x40_0000
#: simulated address region for spill frames.
SPILL_BASE = 0x2000_0000


@dataclass
class _RegionState:
    """Live state of an in-flight atomic region."""

    region_id: int
    alt_pc: int
    checkpoint_regs: list
    checkpoint_spill: list
    record: RegionExecution
    store_buffer: dict = field(default_factory=dict)   # key -> (target, slot, value)
    read_lines: set = field(default_factory=set)
    write_lines: set = field(default_factory=set)
    lock_log: list = field(default_factory=list)
    conflict_at: int | None = None                     # uop offset to inject conflict
    uops: int = 0
    #: pc of the AREGION_BEGIN instruction (conflict-retry re-entry point).
    begin_pc: int = 0
    #: heap allocator snapshot: speculative allocations roll back on abort.
    heap_mark: tuple | None = None
    #: speculative allocations, retracted individually on abort (other
    #: guest threads may have allocated since the mark).
    allocs: list = field(default_factory=list)
    #: injected region-relative faults armed for this entry.
    faults: RegionFaultSchedule | None = None
    #: (thread, id(compiled), region id): keys the forward-progress counters.
    progress_key: tuple = ()
    #: guest thread executing the region and its scan position in the
    #: scheduler's committed-store log (cross-thread conflict detection).
    owner_tid: int = MAIN_THREAD
    log_index: int = 0
    #: True when the abort was a *genuine* cross-thread conflict (store-set
    #: overlap or a contended monitor), not an injected one.
    real_conflict: bool = False
    #: cache-shaped capacity memo: combined line count at the last per-set
    #: check and its verdict (line sets only grow, so an unchanged count
    #: means the occupancy map is unchanged and the recount can be skipped).
    cap_seen: int = -1
    cap_over: bool = False
    #: which capacity bound tripped: (mode, used, limit) for the tracer.
    capacity_detail: tuple | None = None
    #: owner's LL/SC reservation at region entry (None = none held).  An
    #: abort rewinds the reservation station with the rest of the
    #: speculative state; commit keeps whatever the region established.
    reservation: int | None = None


#: canonical branch-condition semantics live in :mod:`repro.hw.codegen`
#: (shared with the pre-decoded handlers); this alias keeps the slow path's
#: historical spelling.
_machine_compare = machine_compare


class Machine:
    """Executes compiled methods against the shared guest heap."""

    def __init__(
        self,
        program,
        heap: Heap,
        config: HardwareConfig = BASELINE_4WIDE,
        stats: ExecStats | None = None,
        timing=None,
        dispatcher=None,
        conflict_injector: Callable[[RegionExecution], int | None] | None = None,
        interrupt_interval: int | None = None,
        fault_injector: FaultInjector | None = None,
        tracer=None,
        dispatch: str = "auto",
    ) -> None:
        self.program = program
        self.heap = heap
        self.config = config
        self.stats = stats if stats is not None else ExecStats()
        self.timing = timing
        self.dispatcher = dispatcher
        #: region-lifecycle tracer; the null tracer costs one attribute
        #: check per emission site and records nothing.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Back-compat shims: the old ad-hoc hooks fold into one injector.
        if fault_injector is not None and (
            conflict_injector is not None or interrupt_interval is not None
        ):
            raise VMError(
                "pass either fault_injector or the legacy "
                "conflict_injector/interrupt_interval hooks, not both"
            )
        if fault_injector is None and (
            conflict_injector is not None or interrupt_interval is not None
        ):
            fault_injector = FaultInjector.from_legacy(
                conflict_injector, interrupt_interval
            )
        self.fault_injector = fault_injector
        if fault_injector is not None:
            # The injector emits fault_armed/interrupt events on this
            # machine's tracer, timestamped by its retired-uop counter.
            fault_injector.tracer = self.tracer
            fault_injector.clock = lambda: self.uops_executed
        self.conflict_injector = conflict_injector
        self.interrupt_interval = interrupt_interval
        #: uop dispatch strategy: "auto" (the fastest observationally safe
        #: tier — template-jit when ``config.jit_mode == "on"``, else
        #: pre-decoded), "jit" (fused-run dispatch; explicit), "predecoded"
        #: (per-uop handler closures; explicit), or "interpretive" (always
        #: the slow loop).  "fast" is a wire-protocol alias for
        #: "predecoded".  Every fast tier is only taken with no tracer and
        #: no scheduler attached, so traced runs and multi-threaded runs
        #: see the instrumented loop unchanged; jit additionally requires
        #: no fault injector (per-uop fault probes must stay live) and
        #: falls back to pre-decoded dispatch when one is attached.
        if dispatch == "fast":
            dispatch = "predecoded"
        if dispatch not in ("auto", "jit", "predecoded", "interpretive"):
            raise VMError(f"unknown dispatch mode {dispatch!r}")
        self.dispatch = dispatch
        #: whether this machine runs fused template-jit code when the
        #: fast path is reachable at all (see :mod:`repro.hw.templatejit`).
        self._jit_tier = (
            (dispatch == "jit"
             or (dispatch == "auto" and config.jit_mode == "on"))
            and self.fault_injector is None
        )
        #: deterministic guest scheduler (attached by TieredVM.run_threads);
        #: None keeps the machine single-threaded and bit-identical to the
        #: pre-scheduler behaviour.
        self.sched = None
        self._line_shift = config.line_shift
        self._code_bases: dict[int, int] = {}
        #: strong refs to installed code: keys of the per-region progress
        #: counters are id()s, which must never be recycled underneath us.
        self._installed_code: dict[int, CompiledMethod] = {}
        self._next_code_base = CODE_BASE
        self._next_spill_base = SPILL_BASE
        #: architectural abort-diagnosis registers (paper §3.2).
        self.abort_reason_register: str | None = None
        self.abort_pc_register: int | None = None
        #: best-effort HTM shape, precomputed (checked per retired uop).
        self._store_bound = (config.spec_store_buffer_entries
                             if config.htm_mode == "store_buffer" else None)
        self._cache_shaped = config.htm_mode == "cache_shaped"
        self._l1_sets = config.l1_config.num_sets
        self._l1_ways = config.l1_config.ways
        self._fallback_mode = config.fallback_lock_mode
        self._setjmp = config.abort_delivery == "setjmp"
        #: the template-jit specialisation key, computed once — compared
        #: per activation against cached jit forms (see
        #: :func:`repro.hw.templatejit.get_jitted`).
        self._jit_profile = jit_profile(self)
        #: the global hybrid fallback lock and per-thread hold counts; a
        #: recovery pass that escalated holds the lock until control next
        #: reaches an ``aregion_begin`` (or the method returns).
        self.fallback_lock = LockWord()
        self._fallback_holds: Counter = Counter()
        #: setjmp-style delivery: condition code pending at the next
        #: ``aregion_begin``, *per thread* so a context switch between the
        #: abort and the re-landed begin cannot leak the code across tids.
        self._pending_cc: dict[int, int] = {}
        #: architectural condition code the re-landed begin exposes.
        self.condition_code_register = 0
        #: RTM-style handler "arguments": numeric reason code + retry hint.
        self.abort_code_register = 0
        self.abort_retry_hint_register = False
        #: global uop counter (drives interrupt injection).
        self.uops_executed = 0
        #: forward progress: consecutive software-visible aborts per region
        #: (escalates to permanent fallback) and conflict retries in the
        #: current storm (bounded by the retry budget).  Both reset on commit.
        self._abort_streak: Counter = Counter()
        self._conflict_retries: Counter = Counter()

    # -- public ------------------------------------------------------------
    def prepare(self, compiled: CompiledMethod) -> None:
        """Eagerly build the dispatch caches this machine's tier will use.

        Pre-decoding and (especially) template-jit host compilation are
        one-time costs that otherwise land on the first activation —
        which, under the harness's measurement protocol, is *inside* the
        measured window.  The VM calls this at method-install time so
        measured samples run pure steady state.  Purely a warm-up:
        executing without it is observationally identical.
        """
        if self.dispatch == "interpretive":
            return
        if self._jit_tier:
            jm = get_jitted(compiled, self)
            jm.table(self.timing is not None)
        else:
            get_predecoded(compiled, self._line_shift)

    def execute(self, compiled: CompiledMethod, args: list[Value]) -> Value:
        if len(args) != compiled.num_params:
            raise VMError(
                f"{compiled.name}: expected {compiled.num_params} args, "
                f"got {len(args)}"
            )
        if (self.dispatch != "interpretive"
                and self.sched is None
                and not self.tracer.enabled):
            if self._jit_tier:
                return self._execute_jit(compiled, args)
            return self._execute_fast(compiled, args)
        code_base = self._code_base(compiled)
        spill_base = self._next_spill_base
        self._next_spill_base += 0x10000

        regs: list[Value] = [0] * compiled.num_regs
        spill: list[Value] = [0] * max(compiled.num_spill_slots, 1)
        for value, loc in zip(args, compiled.param_locations):
            kind, index = loc
            if kind == "r":
                regs[index] = value
            else:
                spill[index] = value

        instrs = compiled.instrs
        pc = 0
        region: _RegionState | None = None
        stats = self.stats
        timing = self.timing
        sched = self.sched
        # This activation runs on exactly one guest thread's host thread, so
        # the tid is constant for the whole frame.
        tid = (sched.current.tid
               if sched is not None and sched.current is not None
               else MAIN_THREAD)

        while True:
            if sched is not None:
                sched.on_step()
            instr = instrs[pc]
            op = instr.op
            self.uops_executed += 1
            stats.uops_retired += 1
            if region is not None:
                region.uops += 1
                region.record.uops += 1
            mem_address = None
            branch_taken: bool | None = None

            try:
                if op is MOp.CONST:
                    regs[instr.dst] = instr.imm
                elif op is MOp.CONST_NULL:
                    regs[instr.dst] = None
                elif op is MOp.CONST_CLASS:
                    regs[instr.dst] = instr.cls
                elif op is MOp.MOV:
                    regs[instr.dst] = regs[instr.a]
                elif op is MOp.ADD:
                    regs[instr.dst] = wrap_int(regs[instr.a] + regs[instr.b])
                elif op is MOp.SUB:
                    regs[instr.dst] = wrap_int(regs[instr.a] - regs[instr.b])
                elif op is MOp.MUL:
                    regs[instr.dst] = wrap_int(regs[instr.a] * regs[instr.b])
                elif op is MOp.DIV:
                    regs[instr.dst] = guest_div(regs[instr.a], regs[instr.b])
                elif op is MOp.MOD:
                    regs[instr.dst] = guest_mod(regs[instr.a], regs[instr.b])
                elif op is MOp.AND:
                    regs[instr.dst] = wrap_int(regs[instr.a] & regs[instr.b])
                elif op is MOp.OR:
                    regs[instr.dst] = wrap_int(regs[instr.a] | regs[instr.b])
                elif op is MOp.XOR:
                    regs[instr.dst] = wrap_int(regs[instr.a] ^ regs[instr.b])
                elif op is MOp.SHL:
                    regs[instr.dst] = wrap_int(regs[instr.a] << (regs[instr.b] & 63))
                elif op is MOp.SHR:
                    regs[instr.dst] = wrap_int(regs[instr.a] >> (regs[instr.b] & 63))
                elif op is MOp.CLASSOF:
                    ref = regs[instr.a]
                    if ref is None:
                        raise NullPointerError("classof null")
                    regs[instr.dst] = (
                        ref.class_name if isinstance(ref, GuestObject) else "[array]"
                    )
                    mem_address = ref.base
                    self._track_read(region, ref.base)
                elif op is MOp.LOADF:
                    obj = self._require(regs[instr.a], GuestObject)
                    slot = obj.field_index[instr.fieldname]
                    mem_address = obj.base + 16 + slot * 8
                    self._track_read(region, mem_address)
                    regs[instr.dst] = self._read_field(region, obj, slot)
                elif op is MOp.STOREF:
                    obj = self._require(regs[instr.a], GuestObject)
                    slot = obj.field_index[instr.fieldname]
                    mem_address = obj.base + 16 + slot * 8
                    self._write(region, obj, slot, regs[instr.b], mem_address,
                                tid)
                    stats.stores += 1
                elif op is MOp.LOADA:
                    arr = self._require(regs[instr.a], GuestArray)
                    index = regs[instr.b]
                    if not 0 <= index < len(arr.values):
                        raise BoundsError(index, len(arr.values))
                    mem_address = arr.element_address(index)
                    self._track_read(region, mem_address)
                    regs[instr.dst] = self._read_array(region, arr, index)
                elif op is MOp.STOREA:
                    arr = self._require(regs[instr.a], GuestArray)
                    index = regs[instr.b]
                    if not 0 <= index < len(arr.values):
                        raise BoundsError(index, len(arr.values))
                    mem_address = arr.element_address(index)
                    self._write(region, arr, index, regs[instr.c], mem_address,
                                tid)
                    stats.stores += 1
                elif op is MOp.LOADLEN:
                    arr = self._require(regs[instr.a], GuestArray)
                    mem_address = arr.length_address()
                    self._track_read(region, mem_address)
                    regs[instr.dst] = arr.length
                elif op is MOp.LOADLOCK:
                    obj = self._require(regs[instr.a], GuestObject)
                    mem_address = obj.lock_address()
                    self._track_read(region, mem_address)
                    regs[instr.dst] = 1 if obj.lock.held_by_other(tid) else 0
                    stats.monitor_ops += 1
                elif op is MOp.STORELOCK:
                    obj = self._require(regs[instr.a], GuestObject)
                    lock = obj.lock
                    mem_address = obj.lock_address()
                    if region is not None:
                        pre = (lock.owner, lock.depth, lock.reserver)
                        region.write_lines.add(
                            mem_address >> self._line_shift)
                        if instr.imm == 1:
                            outcome = lock.enter(tid)
                            if outcome == "blocked":
                                # A speculative region must not wait: the
                                # monitor is genuinely contended, so abort
                                # as a real conflict (retry/backoff path).
                                region.real_conflict = True
                                self._tick(instr, mem_address, timing)
                                pc = self._do_abort(
                                    compiled, region, "conflict",
                                    code_base + pc, None, regs, spill,
                                )
                                region = None
                                continue
                        else:
                            lock.exit(tid)
                        region.lock_log.append(
                            (lock, pre,
                             (lock.owner, lock.depth, lock.reserver))
                        )
                    elif instr.imm == 1:
                        outcome = lock.enter(tid)
                        if outcome == "blocked":
                            if sched is None:
                                raise MonitorStateError(
                                    f"monitor owned by thread {lock.owner} "
                                    f"contended by thread {tid} with no "
                                    "scheduler attached"
                                )
                            while outcome == "blocked":
                                sched.block_on(lock)
                                outcome = lock.enter(tid)
                            lock.contended_acquisitions += 1
                            sched.contended_acquisitions += 1
                        if sched is not None:
                            sched.note_store(mem_address)
                    else:
                        lock.exit(tid)
                        if sched is not None:
                            if lock.waiters:
                                sched.wake_all(lock)
                            sched.note_store(mem_address)
                    stats.stores += 1
                elif op is MOp.LOADSPILL:
                    regs[instr.dst] = spill[instr.imm]
                    mem_address = spill_base + instr.imm * 8
                elif op is MOp.STORESPILL:
                    spill[instr.imm] = regs[instr.a]
                    mem_address = spill_base + instr.imm * 8
                    stats.stores += 1
                elif op is MOp.LOADG:
                    regs[instr.dst] = 0  # yield flag never set in samples
                    mem_address = instr.imm
                elif op is MOp.FAA:
                    obj = self._require(regs[instr.a], GuestObject)
                    slot = obj.field_index[instr.fieldname]
                    mem_address = obj.base + 16 + slot * 8
                    self._track_read(region, mem_address)
                    old = self._read_field(region, obj, slot)
                    self._write(region, obj, slot,
                                wrap_int(old + regs[instr.b]),
                                mem_address, tid)
                    regs[instr.dst] = old
                    stats.stores += 1
                    stats.faa_ops += 1
                elif op is MOp.CAS:
                    obj = self._require(regs[instr.a], GuestObject)
                    slot = obj.field_index[instr.fieldname]
                    mem_address = obj.base + 16 + slot * 8
                    self._track_read(region, mem_address)
                    current = self._read_field(region, obj, slot)
                    ok = compare("eq", current, regs[instr.b])
                    regs[instr.dst] = 1 if ok else 0
                    stats.cas_ops += 1
                    if ok:
                        self._write(region, obj, slot, regs[instr.c],
                                    mem_address, tid)
                        stats.stores += 1
                    else:
                        stats.cas_failures += 1
                elif op is MOp.LL:
                    obj = self._require(regs[instr.a], GuestObject)
                    slot = obj.field_index[instr.fieldname]
                    mem_address = obj.base + 16 + slot * 8
                    self._track_read(region, mem_address)
                    regs[instr.dst] = self._read_field(region, obj, slot)
                    self.heap.set_reservation(tid, mem_address)
                    stats.ll_ops += 1
                elif op is MOp.SC:
                    obj = self._require(regs[instr.a], GuestObject)
                    slot = obj.field_index[instr.fieldname]
                    mem_address = obj.base + 16 + slot * 8
                    self._track_read(region, mem_address)
                    ok = self.heap.check_reservation(tid, mem_address)
                    self.heap.clear_reservation(tid)
                    regs[instr.dst] = 1 if ok else 0
                    stats.sc_ops += 1
                    if ok:
                        self._write(region, obj, slot, regs[instr.b],
                                    mem_address, tid)
                        stats.stores += 1
                    else:
                        stats.sc_failures += 1
                elif op is MOp.NEWOBJ:
                    layout = self.program.field_layout(instr.cls)
                    regs[instr.dst] = self.heap.new_object(instr.cls, layout)
                    if region is not None:
                        region.allocs.append(regs[instr.dst])
                elif op is MOp.NEWARR:
                    regs[instr.dst] = self.heap.new_array(regs[instr.a])
                    if region is not None:
                        region.allocs.append(regs[instr.dst])
                elif op is MOp.BR:
                    taken = _machine_compare(instr.cond, regs[instr.a],
                                             regs[instr.b] if instr.b is not None else None)
                    branch_taken = taken
                    stats.branches += 1
                    if timing is not None:
                        if not timing.branch(code_base + pc, taken):
                            stats.mispredicts += 1
                    if taken:
                        self._tick(instr, mem_address, timing)
                        pc = instr.target
                        if region is not None:
                            reason = self._hw_condition(region)
                            if reason is not None:
                                pc = self._do_abort(
                                    compiled, region, reason,
                                    code_base + pc, None, regs, spill,
                                )
                                region = None
                        continue
                elif op is MOp.JMP:
                    self._tick(instr, mem_address, timing)
                    pc = instr.target
                    continue
                elif op is MOp.BR_TRAP:
                    failed = _machine_compare(
                        instr.cond, regs[instr.a],
                        regs[instr.b] if instr.b is not None else None,
                    )
                    branch_taken = failed
                    stats.branches += 1
                    if timing is not None:
                        if not timing.branch(code_base + pc, failed):
                            stats.mispredicts += 1
                    if failed:
                        raise _trap_error(instr)
                elif op is MOp.BR_ABORT:
                    fired = _machine_compare(
                        instr.cond, regs[instr.a],
                        regs[instr.b] if instr.b is not None else None,
                    )
                    branch_taken = fired
                    stats.branches += 1
                    if timing is not None:
                        if not timing.branch(code_base + pc, fired):
                            stats.mispredicts += 1
                    if fired:
                        self._tick(instr, mem_address, timing)
                        pc = instr.target
                        continue
                elif op is MOp.AREGION_BEGIN:
                    if region is not None:
                        raise VMError("nested aregion_begin")
                    if self._pending_cc:
                        code = self._pending_cc.pop(tid, None)
                        if code is not None:
                            # setjmp-style delivery: the begin "returns
                            # twice" — re-landed with the condition code
                            # set, it branches to the software path.
                            self.condition_code_register = code
                            stats.setjmp_deliveries += 1
                            self._tick(instr, mem_address, timing)
                            pc = instr.target
                            continue
                    self.condition_code_register = 0
                    if self._fallback_holds:
                        # A serialized recovery pass is complete once
                        # control is back at a region entry.
                        self._release_fallback_lock(tid)
                    if instr.imm in compiled.disabled_regions:
                        # Patched to permanent non-speculative fallback:
                        # jump straight to the alternate PC.
                        stats.regions_suppressed += 1
                        if self.tracer.enabled:
                            self.tracer.region_suppressed(
                                self.uops_executed, tid, compiled.name,
                                instr.imm,
                            )
                        self._tick(instr, mem_address, timing)
                        pc = instr.target
                        continue
                    region = self._begin_region(compiled, instr, regs, spill,
                                                pc, tid)
                    if timing is not None:
                        timing.region_begin()
                elif op is MOp.AREGION_END:
                    if region is None:
                        raise VMError("aregion_end outside a region")
                    # Commit-instant check: the on_step above may have let
                    # another thread run (and commit stores) since the last
                    # retirement check; a region must not commit over them.
                    if self._real_conflict(region):
                        region.real_conflict = True
                        self._tick(instr, mem_address, timing)
                        pc = self._do_abort(
                            compiled, region, "conflict", code_base + pc,
                            None, regs, spill,
                        )
                        region = None
                        continue
                    if (self._fallback_mode == "end"
                            and self.fallback_lock.held_by_other(tid)):
                        # Sandboxed subscription: the region ran blind and
                        # validates the fallback lock only now, at the
                        # commit instant; a serialized pass in flight
                        # means it must not commit over it.
                        region.real_conflict = True
                        self._tick(instr, mem_address, timing)
                        pc = self._do_abort(
                            compiled, region, "conflict", code_base + pc,
                            None, regs, spill,
                        )
                        region = None
                        continue
                    self._commit(region)
                    if timing is not None:
                        timing.region_end()
                    region = None
                elif op is MOp.AREGION_ABORT:
                    if region is None:
                        raise VMError("aregion_abort outside a region")
                    reason = instr.cls or "assert"
                    self._tick(instr, mem_address, timing)
                    pc = self._do_abort(
                        compiled, region, reason, code_base + pc,
                        instr.abort_id, regs, spill,
                    )
                    region = None
                    continue
                elif op is MOp.CALLVM or op is MOp.VCALLVM:
                    if region is not None:
                        raise VMError("call inside an atomic region")
                    if self.dispatcher is None:
                        raise VMError("machine has no call dispatcher")
                    call_args = [
                        regs[r] if r >= 0 else spill[-r - 1] for r in instr.args
                    ]
                    if op is MOp.CALLVM:
                        callee = self.program.resolve_static(instr.method)
                    else:
                        receiver = call_args[0]
                        if receiver is None:
                            raise NullPointerError("virtual call on null")
                        callee = self.program.resolve_virtual(
                            receiver.class_name, instr.method
                        )
                    if timing is not None:
                        timing.call_boundary()
                    regs[instr.dst] = self.dispatcher.invoke(callee, call_args)
                elif op is MOp.RET:
                    if region is not None:
                        raise VMError("return inside an atomic region")
                    if self._fallback_holds:
                        self._release_fallback_lock(tid)
                    self._tick(instr, mem_address, timing)
                    return regs[instr.a] if instr.a is not None else None
                else:  # pragma: no cover - exhaustive
                    raise VMError(f"unhandled machine op {op}")
            except GuestError:
                if region is None:
                    raise
                # Hardware fault inside a region: abort; the recovery path
                # re-executes non-speculatively and re-raises precisely.
                pc = self._do_abort(
                    compiled, region, "exception", code_base + pc, None,
                    regs, spill,
                )
                region = None
                continue

            self._tick(instr, mem_address, timing)
            pc += 1
            if region is not None:
                reason = self._hw_condition(region)
                if reason is not None:
                    pc = self._do_abort(
                        compiled, region, reason, code_base + pc, None,
                        regs, spill,
                    )
                    region = None

    # -- pre-decoded fast path ----------------------------------------------
    def _execute_fast(self, compiled: CompiledMethod, args: list[Value]) -> Value:
        """Run the pre-decoded dispatch form of ``compiled``.

        Observationally identical to the interpretive loop (enforced by
        the differential suite); only reached with the null tracer and no
        scheduler, so nothing instrumented is skipped.
        """
        pre = get_predecoded(compiled, self._line_shift)
        code_base = self._code_base(compiled)
        spill_base = self._next_spill_base
        self._next_spill_base += 0x10000

        regs: list[Value] = [0] * compiled.num_regs
        spill: list[Value] = [0] * max(compiled.num_spill_slots, 1)
        for value, loc in zip(args, compiled.param_locations):
            kind, index = loc
            if kind == "r":
                regs[index] = value
            else:
                spill[index] = value

        fr = ExecFrame()
        fr.machine = self
        fr.compiled = compiled
        fr.regs = regs
        fr.spill = spill
        fr.spill_base = spill_base
        fr.code_base = code_base
        fr.region = None
        fr.tid = MAIN_THREAD
        fr.stats = self.stats
        fr.timing = self.timing
        fr.ret = None

        handlers = pre.handlers
        pc = 0
        while pc >= 0:
            pc = handlers[pc](fr)
        return fr.ret

    def _execute_jit(self, compiled: CompiledMethod, args: list[Value]) -> Value:
        """Run the template-jit dispatch form of ``compiled``.

        Same loop shape as :meth:`_execute_fast`, but the pc-indexed
        table holds a *fused-run function* at each run-start pc and the
        per-uop handler everywhere else, so straight-line spans retire
        without re-entering the loop.  Fused code bails to the handler
        tier for anything it cannot replay exactly; the loop resumes at
        whatever pc the handler (or the abort machinery) hands back.
        """
        jm = get_jitted(compiled, self)
        code_base = self._code_base(compiled)
        spill_base = self._next_spill_base
        self._next_spill_base += 0x10000

        regs: list[Value] = [0] * compiled.num_regs
        spill: list[Value] = [0] * max(compiled.num_spill_slots, 1)
        for value, loc in zip(args, compiled.param_locations):
            kind, index = loc
            if kind == "r":
                regs[index] = value
            else:
                spill[index] = value

        fr = ExecFrame()
        fr.machine = self
        fr.compiled = compiled
        fr.regs = regs
        fr.spill = spill
        fr.spill_base = spill_base
        fr.code_base = code_base
        fr.region = None
        fr.tid = MAIN_THREAD
        fr.stats = self.stats
        fr.timing = self.timing
        fr.ret = None

        table = jm.table(self.timing is not None)
        pc = 0
        while pc >= 0:
            pc = table[pc](fr)
        return fr.ret

    def _fast_abort(self, fr: ExecFrame, reason: str, next_pc: int) -> int:
        """Retirement-check abort from a handler; returns the resume pc."""
        pc = self._do_abort(
            fr.compiled, fr.region, reason, fr.code_base + next_pc, None,
            fr.regs, fr.spill,
        )
        fr.region = None
        return pc

    def _fast_exception(self, fr: ExecFrame, pc: int) -> int:
        """Guest fault inside a region: abort without ticking the uop."""
        resume = self._do_abort(
            fr.compiled, fr.region, "exception", fr.code_base + pc, None,
            fr.regs, fr.spill,
        )
        fr.region = None
        return resume

    # -- helpers -------------------------------------------------------------
    def _code_base(self, compiled: CompiledMethod) -> int:
        base = self._code_bases.get(id(compiled))
        if base is None:
            base = self._code_bases[id(compiled)] = self._next_code_base
            self._installed_code[id(compiled)] = compiled
            self._next_code_base += max(len(compiled.instrs), 64) * 4
        return base

    def _require(self, value, kind):
        if value is None:
            raise NullPointerError("null dereference")
        if not isinstance(value, kind):
            raise VMError(f"expected {kind.__name__}, got {type(value).__name__}")
        return value

    def _tick(self, instr: MInstr, mem_address: int | None, timing) -> None:
        if timing is not None:
            timing.uop(instr, mem_address)
        if mem_address is not None and instr.op in (
            MOp.LOADF, MOp.LOADA, MOp.LOADLEN, MOp.LOADLOCK, MOp.LOADSPILL,
            MOp.LOADG, MOp.CLASSOF,
        ):
            self.stats.loads += 1

    # -- region mechanics ---------------------------------------------------
    def _begin_region(self, compiled, instr, regs, spill, pc,
                      tid: int = MAIN_THREAD) -> _RegionState:
        record = RegionExecution(region_key=(compiled.name, instr.imm))
        region = _RegionState(
            region_id=instr.imm,
            alt_pc=instr.target,
            checkpoint_regs=list(regs),
            checkpoint_spill=list(spill),
            record=record,
            begin_pc=pc,
            heap_mark=self.heap.mark(),
            progress_key=(tid, id(compiled), instr.imm),
            owner_tid=tid,
            reservation=self.heap.reservations.get(tid),
        )
        if self._fallback_mode == "begin":
            # Eager subscription: the fallback lock's line joins the read
            # set, so any acquisition (a store to that word) conflicts the
            # region immediately — via the store log cross-thread and via
            # the retirement-check probe in ``_hw_condition``.
            region.read_lines.add(FALLBACK_LOCK_ADDRESS >> self._line_shift)
        if self.sched is not None:
            region.log_index = self.sched.region_begin(tid)
        if self.tracer.enabled:
            self.tracer.region_enter(
                self.uops_executed, tid, compiled.name, instr.imm,
                self._code_bases[id(compiled)] + pc,
            )
        if self.fault_injector is not None:
            region.faults = self.fault_injector.schedule_region(record)
            region.conflict_at = region.faults.conflict_at
        return region

    def _track_read(self, region: _RegionState | None, address: int) -> None:
        if region is not None:
            region.read_lines.add(address >> self._line_shift)

    def _read_field(self, region, obj, slot):
        if region is not None:
            key = (id(obj), "f", slot)
            if key in region.store_buffer:
                return region.store_buffer[key][2]
        return obj.slots[slot]

    def _read_array(self, region, arr, index):
        if region is not None:
            key = (id(arr), "a", index)
            if key in region.store_buffer:
                return region.store_buffer[key][2]
        return arr.values[index]

    def _write(self, region, target, slot, value, address,
               tid: int = MAIN_THREAD) -> None:
        if region is None:
            if isinstance(target, GuestObject):
                target.slots[slot] = value
            else:
                target.values[slot] = value
            if self.heap.reservations:
                # A committed data store invalidates other threads' LL/SC
                # reservations on its cache line.
                self.heap.kill_reservations(tid, address, self._line_shift)
            if self.sched is not None:
                self.sched.note_store(address)
            return
        kind = "f" if isinstance(target, GuestObject) else "a"
        region.store_buffer[(id(target), kind, slot)] = (target, slot, value)
        region.write_lines.add(address >> self._line_shift)

    def _real_conflict(self, region: _RegionState) -> bool:
        """Scan new committed-store-log entries for a genuine overlap.

        The scheduler logs every committed/non-speculative store (as
        ``(tid, line)``) while regions are in flight; a store from another
        thread that touches a line in this region's read or write set is a
        real coherence conflict — exactly the eviction-of-a-tracked-line
        condition of §3.3.  ``log_index`` advances so each entry is scanned
        once.
        """
        sched = self.sched
        if sched is None:
            return False
        log = sched.store_log
        index = region.log_index
        if index >= len(log):
            return False
        tid = region.owner_tid
        reads = region.read_lines
        writes = region.write_lines
        hit = False
        for other, line in log[index:]:
            if other != tid and (line in reads or line in writes):
                hit = True
                break
        region.log_index = len(log)
        return hit

    def _commit(self, region: _RegionState) -> None:
        for target, slot, value in region.store_buffer.values():
            if isinstance(target, GuestObject):
                target.slots[slot] = value
            else:
                target.values[slot] = value
        if self.heap.reservations and region.write_lines:
            # The commit makes the region's stores visible "at an instant":
            # every written line invalidates other threads' LL/SC
            # reservations, at line granularity like the coherence fabric.
            shift = self._line_shift
            for line in region.write_lines:
                self.heap.kill_reservations(
                    region.owner_tid, line << shift, shift
                )
        sched = self.sched
        if sched is not None:
            sched.region_end(region.owner_tid)
            # The commit itself is a burst of stores becoming visible "at
            # an instant": other still-in-flight regions must see them.
            if sched.logging:
                for line in region.write_lines:
                    sched.note_store_line(region.owner_tid, line)
            # Monitors released inside the region are only *really*
            # released now that the region committed.
            for lock, _pre, _post in region.lock_log:
                if lock.owner is None and lock.waiters:
                    sched.wake_all(lock)
        record = region.record
        record.committed = True
        record.lines_read = len(region.read_lines)
        record.lines_written = len(region.write_lines)
        self.stats.note_region(record)
        if self.tracer.enabled:
            self.tracer.region_commit(
                self.uops_executed, region.owner_tid,
                record.region_key[0], region.region_id, record.uops,
                record.lines_read, record.lines_written,
            )
        # Forward progress: a commit ends any abort streak for this region.
        key = region.progress_key
        if self._abort_streak.get(key):
            self._abort_streak[key] = 0
        if self._conflict_retries.get(key):
            self._conflict_retries[key] = 0

    def _hw_condition(self, region: _RegionState) -> str | None:
        """Best-effort hardware abort conditions, checked at retirement."""
        if self._real_conflict(region):
            region.real_conflict = True
            return "conflict"
        if (self._fallback_mode == "begin"
                and self.fallback_lock.held_by_other(region.owner_tid)):
            # Begin-time subscription: the region holds the lock's line in
            # its read set, so an acquisition conflicts it at once.
            region.real_conflict = True
            return "conflict"
        line_limit = self.config.region_line_limit
        faults = region.faults
        if faults is not None and faults.line_limit is not None:
            # Injected capacity pressure: the best-effort bound shrinks.
            line_limit = min(line_limit, faults.line_limit)
        if len(region.read_lines) + len(region.write_lines) > line_limit:
            return "overflow"
        store_bound = self._store_bound
        if faults is not None and faults.store_limit is not None:
            # Injected store-buffer pressure (effective in every htm_mode).
            store_bound = (faults.store_limit if store_bound is None
                           else min(store_bound, faults.store_limit))
        if store_bound is not None and len(region.store_buffer) > store_bound:
            region.capacity_detail = (
                "store_buffer", len(region.store_buffer), store_bound,
            )
            return "capacity"
        if self._cache_shaped and self._set_overflow(region):
            return "capacity"
        if faults is not None:
            if faults.assert_at is not None and region.uops >= faults.assert_at:
                return "assert"
            if (faults.exception_at is not None
                    and region.uops >= faults.exception_at):
                return "exception"
        if (self.fault_injector is not None
                and self.fault_injector.take_interrupt(self.uops_executed)):
            return "interrupt"
        if region.conflict_at is not None and region.uops >= region.conflict_at:
            return "conflict"
        return None

    def _set_overflow(self, region: _RegionState) -> bool:
        """Cache-shaped capacity: do the region's speculative lines fit?

        A tracked line maps to L1 set ``line % num_sets``; more distinct
        lines in one set than the cache has ways means a tracked line
        would have to be evicted, which a best-effort HTM cannot survive.
        Line sets only grow, so the per-set recount is skipped while the
        combined line count is unchanged since the last check.
        """
        seen = len(region.read_lines) + len(region.write_lines)
        if seen == region.cap_seen:
            return region.cap_over
        region.cap_seen = seen
        num_sets = self._l1_sets
        ways = self._l1_ways
        reads = region.read_lines
        occupancy: Counter = Counter()
        for line in reads:
            occupancy[line % num_sets] += 1
        for line in region.write_lines:
            if line not in reads:
                occupancy[line % num_sets] += 1
        over = False
        for used in occupancy.values():
            if used > ways:
                region.capacity_detail = ("cache_shaped", used, ways)
                over = True
                break
        region.cap_over = over
        return over

    # -- hybrid fallback lock ------------------------------------------------
    def _acquire_fallback_lock(self, tid: int) -> None:
        """Serialize a recovery pass on the global fallback lock.

        Blocks (via the scheduler) while another thread holds the lock;
        single-threaded machines with a foreign owner cannot ever be
        released, so they fail fast like contended monitors do.
        """
        lock = self.fallback_lock
        sched = self.sched
        outcome = lock.enter(tid)
        while outcome == "blocked":
            if sched is None:
                raise MonitorStateError(
                    f"fallback lock owned by thread {lock.owner} contended "
                    f"by thread {tid} with no scheduler attached"
                )
            self.stats.fallback_lock_waits += 1
            if self.tracer.enabled:
                self.tracer.fallback_lock(
                    self.uops_executed, tid, "wait", lock.depth)
            sched.block_on(lock)
            outcome = lock.enter(tid)
        self._fallback_holds[tid] += 1
        self.stats.fallback_lock_acquisitions += 1
        if sched is not None:
            # The acquisition is a store to the lock word: begin-mode
            # subscribers holding its line see a real conflict.
            sched.note_store(FALLBACK_LOCK_ADDRESS)
        if self.tracer.enabled:
            self.tracer.fallback_lock(
                self.uops_executed, tid, "acquire", lock.depth)

    def _release_fallback_lock(self, tid: int) -> None:
        holds = self._fallback_holds.pop(tid, 0)
        if not holds:
            return
        lock = self.fallback_lock
        for _ in range(holds):
            lock.exit(tid)
        sched = self.sched
        if sched is not None:
            sched.note_store(FALLBACK_LOCK_ADDRESS)
            if lock.owner is None and lock.waiters:
                sched.wake_all(lock)
        if self.tracer.enabled:
            self.tracer.fallback_lock(
                self.uops_executed, tid, "release", lock.depth)

    def _do_abort(
        self,
        compiled: CompiledMethod,
        region: _RegionState,
        reason: str,
        abort_pc: int,
        abort_id: int | None,
        regs: list,
        spill: list,
    ) -> int:
        """Roll the region back; returns the resumption PC.

        Rollback is total: buffered stores are discarded, registers and
        spill slots restore from the checkpoint, monitor words and
        speculative allocations are undone.  The resumption PC is normally
        the alternate (recovery) PC; a conflict abort within the retry
        budget instead re-enters the region from its ``aregion_begin``
        (after an exponential-backoff stall), and a region whose abort
        streak exhausts the fallback threshold is patched so every future
        entry goes straight to the recovery path — the forward-progress
        guarantee of §3/§5.
        """
        record = region.record
        record.committed = False
        record.abort_reason = reason
        record.abort_pc = abort_pc
        self.stats.note_region(record)
        if self.tracer.enabled:
            self.tracer.region_abort(
                self.uops_executed, region.owner_tid,
                record.region_key[0], region.region_id, reason, abort_pc,
                record.uops, len(region.read_lines),
                len(region.write_lines),
            )
            if reason == "capacity":
                mode, used, limit = (
                    region.capacity_detail
                    or ("store_buffer", len(region.store_buffer), 0)
                )
                self.tracer.region_capacity(
                    self.uops_executed, region.owner_tid,
                    record.region_key[0], region.region_id, mode, used,
                    limit,
                )
        sched = self.sched
        if sched is not None:
            sched.region_end(region.owner_tid)
        if reason == "conflict":
            if region.real_conflict:
                self.stats.real_conflict_aborts += 1
            else:
                self.stats.injected_conflict_aborts += 1
        elif reason == "capacity":
            self.stats.capacity_aborts += 1
        if abort_id is not None:
            self.stats.abort_sites[
                (compiled.name, region.region_id, abort_id)
            ] += 1
        for lock, pre, post in reversed(region.lock_log):
            # Undo the speculative monitor operation — but only if the lock
            # word still holds the state this region left it in.  Another
            # thread may have legitimately acquired a monitor the region
            # speculatively released (that store made the region abort);
            # clobbering its ownership would corrupt the lock.
            if (lock.owner, lock.depth, lock.reserver) == post:
                lock.owner, lock.depth, lock.reserver = pre
        regs[:] = region.checkpoint_regs
        spill[:] = region.checkpoint_spill
        if region.heap_mark is not None:
            self.heap.discard_speculative(region.heap_mark, region.allocs)
        # The reservation station rewinds with the speculative state: an
        # LL inside the aborted region must not survive the abort.
        if region.reservation is None:
            self.heap.clear_reservation(region.owner_tid)
        else:
            self.heap.set_reservation(region.owner_tid, region.reservation)
        self.abort_reason_register = reason
        self.abort_pc_register = abort_pc
        #: RTM-style handler arguments (set on every abort, including
        #: transparent retries — the hardware always reports).
        self.abort_code_register = ABORT_REASON_CODES.get(reason, 0)
        self.abort_retry_hint_register = reason in RETRYABLE_REASONS
        if sched is not None:
            # Rollback may have released monitors acquired inside the
            # region while other threads were already parked on them.
            for lock, _pre, _post in region.lock_log:
                if lock.owner is None and lock.waiters:
                    sched.wake_all(lock)
        if self.timing is not None:
            self.timing.region_abort()

        key = region.progress_key
        if reason == "conflict":
            attempt = self._conflict_retries[key] + 1
            if attempt <= self.config.region_retry_budget:
                # Transient condition: retry the region from its checkpoint
                # after backing off (doubling per consecutive attempt).
                self._conflict_retries[key] = attempt
                backoff = self.config.region_backoff_cycles * (1 << (attempt - 1))
                self.stats.conflict_retries += 1
                self.stats.backoff_cycles += backoff
                if self.timing is not None:
                    self.timing.stall(backoff)
                if self.tracer.enabled:
                    self.tracer.region_retry(
                        self.uops_executed, region.owner_tid,
                        record.region_key[0], region.region_id, attempt,
                        backoff,
                    )
                return region.begin_pc
        self._conflict_retries[key] = 0
        streak = self._abort_streak[key] + 1
        self._abort_streak[key] = streak
        threshold = self.config.region_fallback_threshold
        if threshold is not None and streak >= threshold:
            compiled.disable_region(region.region_id)
            self._abort_streak[key] = 0
            self.stats.note_fallback(record.region_key)
            if self.tracer.enabled:
                self.tracer.region_fallback(
                    self.uops_executed, region.owner_tid,
                    record.region_key[0], region.region_id,
                )
        if (self._fallback_mode is not None
                and reason in HW_ESCALATION_REASONS):
            # Hybrid escalation: the software-visible recovery pass for a
            # hardware-originated abort serializes on the fallback lock
            # (still-speculative regions detect the acquisition and
            # abort), guaranteeing progress without retry roulette.
            self._acquire_fallback_lock(region.owner_tid)
        if self._setjmp:
            # Power/z-style delivery: re-land on the aregion_begin with
            # the condition code pending; the begin branches to the
            # software path instead of opening a region.
            self._pending_cc[region.owner_tid] = (
                ABORT_REASON_CODES.get(reason, 0) or 1
            )
            return region.begin_pc
        return region.alt_pc
