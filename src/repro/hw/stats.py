"""Execution statistics: uops, cycles, regions, aborts, footprints.

These counters back every table and figure in the evaluation:

- Figure 7: ``cycles`` ratios between compiler configurations;
- Figure 8: ``uops_retired`` reduction;
- Table 3: region ``coverage``, unique regions, sizes, abort rates;
- §6.2: region size and cache-footprint distributions;
- Figure 9: cycles under degraded ``aregion_begin`` implementations.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class RegionExecution:
    """Statistics for one dynamic atomic-region execution."""

    region_key: tuple  # (method name, region id)
    uops: int = 0
    lines_read: int = 0
    lines_written: int = 0
    committed: bool = False
    abort_reason: str | None = None
    abort_pc: int | None = None


@dataclass
class ExecStats:
    """Aggregated over one measured execution sample."""

    uops_retired: int = 0
    uops_in_regions: int = 0
    interpreter_bytecodes: int = 0
    cycles: float = 0.0

    regions_entered: int = 0
    regions_committed: int = 0
    regions_aborted: int = 0
    abort_reasons: Counter = field(default_factory=Counter)
    #: (method, region id, abort_id) -> count, for adaptive recompilation.
    abort_sites: Counter = field(default_factory=Counter)
    unique_regions: set = field(default_factory=set)

    #: per-method and per-region entry/abort counters (adaptive control and
    #: the forward-progress escalation both want rates *per region*, not the
    #: global average).
    entries_by_method: Counter = field(default_factory=Counter)
    aborts_by_method: Counter = field(default_factory=Counter)
    entries_by_region: Counter = field(default_factory=Counter)
    aborts_by_region: Counter = field(default_factory=Counter)

    #: forward-progress events: transparent conflict retries, backoff stall
    #: cycles charged, region entries skipped because the region was patched
    #: to its non-speculative fallback, and the fallback events themselves
    #: (region_key -> count).
    conflict_retries: int = 0
    backoff_cycles: float = 0.0
    regions_suppressed: int = 0
    region_fallbacks: Counter = field(default_factory=Counter)

    #: best-effort HTM realism counters (all zero under the default
    #: unbounded/no-lock/handler-delivery config).  ``capacity_aborts``
    #: mirrors ``abort_reasons["capacity"]`` as a flat counter; the
    #: fallback-lock pair counts hybrid escalations (acquisitions) and
    #: scheduler parks while contending for the lock; ``setjmp_deliveries``
    #: counts condition-code deliveries at an ``aregion_begin``.
    capacity_aborts: int = 0
    fallback_lock_acquisitions: int = 0
    fallback_lock_waits: int = 0
    setjmp_deliveries: int = 0

    #: concurrency (deterministic multi-threaded runs; all zero/empty when
    #: threads=1, so single-threaded figures are unaffected).  Conflict
    #: aborts split by provenance: ``real`` = a genuine cross-thread
    #: store-set overlap or contended monitor detected by the conflict bus,
    #: ``injected`` = scheduled by a :class:`~repro.faults.FaultPlan`.
    real_conflict_aborts: int = 0
    injected_conflict_aborts: int = 0
    contended_acquisitions: int = 0
    context_switches: int = 0
    #: tid -> retired guest steps, copied from the scheduler after a run.
    uops_by_thread: Counter = field(default_factory=Counter)

    region_sizes: list[int] = field(default_factory=list)
    region_lines: list[int] = field(default_factory=list)

    loads: int = 0
    stores: int = 0
    branches: int = 0
    mispredicts: int = 0
    monitor_ops: int = 0
    sle_elisions: int = 0

    #: architectural atomic primitives (machine tiers only; the failure
    #: counters split out the CAS/SC attempts that stored nothing — the
    #: retry traffic the contention figures plot).
    faa_ops: int = 0
    cas_ops: int = 0
    cas_failures: int = 0
    ll_ops: int = 0
    sc_ops: int = 0
    sc_failures: int = 0

    def note_region(self, record: RegionExecution) -> None:
        self.regions_entered += 1
        self.unique_regions.add(record.region_key)
        method_name = record.region_key[0]
        self.entries_by_method[method_name] += 1
        self.entries_by_region[record.region_key] += 1
        if record.committed:
            self.regions_committed += 1
            self.region_sizes.append(record.uops)
            self.region_lines.append(record.lines_read + record.lines_written)
            self.uops_in_regions += record.uops
        else:
            self.regions_aborted += 1
            self.abort_reasons[record.abort_reason] += 1
            self.aborts_by_method[method_name] += 1
            self.aborts_by_region[record.region_key] += 1

    def note_fallback(self, region_key: tuple) -> None:
        """A region exhausted its budget: patched to non-speculative code."""
        self.region_fallbacks[region_key] += 1

    def method_abort_rate(self, method_name: str) -> float:
        """Aborts per region entry for one method's regions."""
        entries = self.entries_by_method.get(method_name, 0)
        if entries == 0:
            return 0.0
        return self.aborts_by_method.get(method_name, 0) / entries

    # -- derived metrics ------------------------------------------------------
    @property
    def coverage(self) -> float:
        """Fraction of retired uops executed inside committed regions."""
        if self.uops_retired == 0:
            return 0.0
        return self.uops_in_regions / self.uops_retired

    @property
    def abort_rate(self) -> float:
        """Aborts per region entry (Table 3 'abort %')."""
        if self.regions_entered == 0:
            return 0.0
        return self.regions_aborted / self.regions_entered

    @property
    def aborts_per_kuop(self) -> float:
        if self.uops_retired == 0:
            return 0.0
        return 1000.0 * self.regions_aborted / self.uops_retired

    @property
    def mean_region_size(self) -> float:
        if not self.region_sizes:
            return 0.0
        return sum(self.region_sizes) / len(self.region_sizes)

    def region_line_quantile(self, q: float) -> int:
        if not self.region_lines:
            return 0
        ordered = sorted(self.region_lines)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def summary(self) -> dict:
        return {
            "uops": self.uops_retired,
            "cycles": self.cycles,
            "coverage": round(self.coverage, 4),
            "regions": self.regions_entered,
            "unique_regions": len(self.unique_regions),
            "mean_region_size": round(self.mean_region_size, 1),
            "abort_rate": round(self.abort_rate, 5),
            "aborts_per_kuop": round(self.aborts_per_kuop, 5),
            "mispredict_rate": (
                round(self.mispredicts / self.branches, 5) if self.branches else 0.0
            ),
            "conflict_retries": self.conflict_retries,
            "region_fallbacks": sum(self.region_fallbacks.values()),
            "regions_suppressed": self.regions_suppressed,
            "real_conflict_aborts": self.real_conflict_aborts,
            "injected_conflict_aborts": self.injected_conflict_aborts,
            "contended_acquisitions": self.contended_acquisitions,
            "context_switches": self.context_switches,
            "threads": max(len(self.uops_by_thread), 1),
            "capacity_aborts": self.capacity_aborts,
            "fallback_lock_acquisitions": self.fallback_lock_acquisitions,
            "fallback_lock_waits": self.fallback_lock_waits,
            "setjmp_deliveries": self.setjmp_deliveries,
            "faa_ops": self.faa_ops,
            "cas_ops": self.cas_ops,
            "cas_failures": self.cas_failures,
            "ll_ops": self.ll_ops,
            "sc_ops": self.sc_ops,
            "sc_failures": self.sc_failures,
        }
