"""Hardware configurations (the paper's Table 1 and §6.3 variants)."""

from __future__ import annotations

from dataclasses import dataclass, replace

#: recognised best-effort HTM capacity shapes (:attr:`HardwareConfig.htm_mode`).
HTM_MODES = ("unbounded", "store_buffer", "cache_shaped")
#: fallback-lock subscription points (:attr:`HardwareConfig.fallback_lock_mode`).
FALLBACK_LOCK_MODES = (None, "begin", "end")
#: abort-delivery ISA variants (:attr:`HardwareConfig.abort_delivery`).
ABORT_DELIVERY_MODES = ("handler", "setjmp")
#: host template-jit gate (:attr:`HardwareConfig.jit_mode`).
JIT_MODES = ("on", "off")


@dataclass(frozen=True)
class CacheConfig:
    size_bytes: int
    ways: int
    line_bytes: int = 64
    hit_cycles: int = 4

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class HardwareConfig:
    """Processor parameters.  Defaults reproduce Table 1 of the paper."""

    name: str = "4wide"
    frequency_ghz: float = 4.0
    fetch_width: int = 4
    issue_width: int = 4
    retire_width: int = 4
    branch_mispredict_penalty: int = 20
    instruction_window: int = 128
    scheduling_window: int = 64
    load_buffer: int = 60
    store_buffer: int = 40
    gshare_entries: int = 64 * 1024
    bimodal_entries: int = 16 * 1024
    l1_config: CacheConfig = CacheConfig(32 * 1024, 4, 64, 4)
    l2_config: CacheConfig = CacheConfig(4 * 1024 * 1024, 8, 64, 20)
    memory_latency_cycles: int = 400  # 100 ns at 4 GHz

    # -- atomic-region implementation knobs (paper Figure 9) ----------------
    #: cycles the pipeline stalls at every aregion_begin ("+ 20-cycle"
    #: configuration); 0 for the checkpoint substrate.
    aregion_begin_stall: int = 0
    #: if True, an aregion_begin stalls at decode until every preceding
    #: atomic region has committed ("single-inflight" configuration).
    single_inflight_regions: bool = False
    #: best-effort capacity: a region whose *combined* read/write set exceeds
    #: this many L1 lines aborts with reason "overflow".  The bound covers
    #: the union of both sets, so a reads-only region (zero buffered stores)
    #: overflows exactly like a store-heavy one — tracked loads consume
    #: speculative-tag capacity whether or not anything is written.
    region_line_limit: int = 448  # ~ 7/8 of a 512-line L1

    # -- best-effort HTM shape (commercial-HTM realism; SNIPPETS §9.2) ------
    #: capacity model for speculative state.  "unbounded" is the paper's
    #: idealized checkpoint substrate (only ``region_line_limit`` applies).
    #: "store_buffer" is Rock-shaped: the region aborts with reason
    #: "capacity" when its speculative store buffer holds more than
    #: ``spec_store_buffer_entries`` distinct locations.  "cache_shaped"
    #: bounds the read/write *line* set by L1 geometry: more distinct lines
    #: mapping to one L1 set than the cache has ways aborts with "capacity"
    #: (a tracked line would have to be evicted).
    htm_mode: str = "unbounded"
    #: Rock-style speculative store-buffer capacity (distinct buffered
    #: locations) for ``htm_mode="store_buffer"``.
    spec_store_buffer_entries: int = 32
    #: hybrid fallback-lock mode: None (no lock — pure retry/alt-PC
    #: escalation), "begin" (the region subscribes to the global fallback
    #: lock's cache line at aregion_begin, so a lock acquisition conflicts
    #: it immediately), or "end" (sandboxed: the region runs blind and
    #: validates the lock is free at the commit instant).
    fallback_lock_mode: str | None = None
    #: abort-delivery ISA variant: "handler" (RTM-style — the abort reason
    #: code and a retry hint are delivered in architectural registers and
    #: control lands on the handler/alt PC) or "setjmp" (Power/z-style —
    #: control re-lands on the aregion_begin with a condition code set and
    #: the begin itself branches to the software path).
    abort_delivery: str = "handler"

    # -- forward-progress guarantee (paper §3/§5: "the hardware must
    # -- guarantee forward progress") ---------------------------------------
    #: transparent checkpoint retries for a *conflict* abort before the
    #: hardware gives up and takes the software recovery path (alt-PC).
    region_retry_budget: int = 4
    #: base backoff stall in cycles before a conflict retry; doubles with
    #: each consecutive retry of the same region (exponential backoff).
    region_backoff_cycles: int = 32
    #: consecutive software-visible aborts of one region before its
    #: ``aregion_begin`` is patched to jump straight to the alt-PC
    #: (permanent non-speculative fallback); None disables escalation.
    region_fallback_threshold: int | None = 64

    # -- host execution (simulator implementation, not modeled hardware) ----
    #: template-jit gate for the *host* dispatch tier ("on"/"off").  With
    #: "on", machines running under ``dispatch="auto"`` execute fused
    #: straight-line uop runs compiled to Python source
    #: (:mod:`repro.hw.templatejit`); "off" pins auto-dispatch to the
    #: pre-decoded handler tier.  Purely a host-speed knob — every tier is
    #: observationally identical, so modeled results never depend on it.
    jit_mode: str = "on"

    def __post_init__(self) -> None:
        if self.htm_mode not in HTM_MODES:
            raise ValueError(f"unknown htm_mode {self.htm_mode!r}")
        if self.fallback_lock_mode not in FALLBACK_LOCK_MODES:
            raise ValueError(
                f"unknown fallback_lock_mode {self.fallback_lock_mode!r}"
            )
        if self.abort_delivery not in ABORT_DELIVERY_MODES:
            raise ValueError(f"unknown abort_delivery {self.abort_delivery!r}")
        if self.spec_store_buffer_entries <= 0:
            raise ValueError("spec_store_buffer_entries must be positive")
        if self.jit_mode not in JIT_MODES:
            raise ValueError(f"unknown jit_mode {self.jit_mode!r}")

    @property
    def line_shift(self) -> int:
        """log2 of the L1 line size: the granularity at which atomic-region
        read/write sets are tracked and cross-thread conflicts detected."""
        return self.l1_config.line_bytes.bit_length() - 1

    def scaled(self, **changes) -> "HardwareConfig":
        return replace(self, **changes)


#: Table 1 baseline: aggressive 4-wide OOO with checkpoint substrate.
BASELINE_4WIDE = HardwareConfig()

#: §6.3: "a 2-wide OOO version of the baseline machine (widths reduced to 2/2/2)".
OOO_2WIDE = BASELINE_4WIDE.scaled(
    name="2wide", fetch_width=2, issue_width=2, retire_width=2,
)

#: §6.3: "a 2-wide half OOO configuration that halves the superscalar width
#: and all other processor structures (including caches and TLBs)".
OOO_2WIDE_HALF = BASELINE_4WIDE.scaled(
    name="2wide-half",
    fetch_width=2, issue_width=2, retire_width=2,
    instruction_window=64, scheduling_window=32,
    load_buffer=30, store_buffer=20,
    gshare_entries=32 * 1024, bimodal_entries=8 * 1024,
    l1_config=CacheConfig(16 * 1024, 4, 64, 4),
    l2_config=CacheConfig(2 * 1024 * 1024, 8, 64, 20),
    region_line_limit=224,
)

#: Figure 9: checkpoint substrate with a 20-cycle aregion_begin stall.
CHKPT_20CYCLE = BASELINE_4WIDE.scaled(name="4wide+20cyc", aregion_begin_stall=20)

#: Figure 9: only one atomic region in flight at a time.
CHKPT_SINGLE_INFLIGHT = BASELINE_4WIDE.scaled(
    name="4wide-single-inflight", single_inflight_regions=True,
)

# -- best-effort HTM variants (robustness sweeps, not paper figures) ----------
# Each is the Table 1 machine with one commercial-HTM failure shape bolted
# on; the default BASELINE_4WIDE stays the idealized unbounded substrate, so
# every published figure is untouched.

#: Rock-shaped: a 32-entry speculative store buffer caps the write set.
HTM_ROCK_STORE_BUFFER = BASELINE_4WIDE.scaled(
    name="4wide-htm-rock", htm_mode="store_buffer",
    spec_store_buffer_entries=32,
)

#: Cache-shaped: speculative lines must fit the L1's set associativity.
HTM_CACHE_SHAPED = BASELINE_4WIDE.scaled(
    name="4wide-htm-cache", htm_mode="cache_shaped",
)

#: Hybrid fallback lock, subscribed at region begin (eager conflict).
HTM_FALLBACK_LOCK_BEGIN = BASELINE_4WIDE.scaled(
    name="4wide-htm-lock-begin", htm_mode="cache_shaped",
    fallback_lock_mode="begin",
)

#: Hybrid fallback lock, validated at the commit instant (sandboxed).
HTM_FALLBACK_LOCK_END = BASELINE_4WIDE.scaled(
    name="4wide-htm-lock-end", htm_mode="cache_shaped",
    fallback_lock_mode="end",
)

#: Power/z-style setjmp abort delivery on the Rock-shaped capacity model.
HTM_SETJMP_DELIVERY = BASELINE_4WIDE.scaled(
    name="4wide-htm-setjmp", htm_mode="store_buffer",
    abort_delivery="setjmp",
)


def htm_variant_configs() -> tuple[HardwareConfig, ...]:
    """The HTM-realism sweep axis: the unbounded baseline plus every
    best-effort shape.  Config *names* key the experiment cache, so these
    drop straight into ``harness.experiment.run_workload`` sweeps."""
    return (
        BASELINE_4WIDE,
        HTM_ROCK_STORE_BUFFER,
        HTM_CACHE_SHAPED,
        HTM_FALLBACK_LOCK_BEGIN,
        HTM_FALLBACK_LOCK_END,
        HTM_SETJMP_DELIVERY,
    )
