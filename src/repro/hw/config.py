"""Hardware configurations (the paper's Table 1 and §6.3 variants)."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CacheConfig:
    size_bytes: int
    ways: int
    line_bytes: int = 64
    hit_cycles: int = 4

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class HardwareConfig:
    """Processor parameters.  Defaults reproduce Table 1 of the paper."""

    name: str = "4wide"
    frequency_ghz: float = 4.0
    fetch_width: int = 4
    issue_width: int = 4
    retire_width: int = 4
    branch_mispredict_penalty: int = 20
    instruction_window: int = 128
    scheduling_window: int = 64
    load_buffer: int = 60
    store_buffer: int = 40
    gshare_entries: int = 64 * 1024
    bimodal_entries: int = 16 * 1024
    l1_config: CacheConfig = CacheConfig(32 * 1024, 4, 64, 4)
    l2_config: CacheConfig = CacheConfig(4 * 1024 * 1024, 8, 64, 20)
    memory_latency_cycles: int = 400  # 100 ns at 4 GHz

    # -- atomic-region implementation knobs (paper Figure 9) ----------------
    #: cycles the pipeline stalls at every aregion_begin ("+ 20-cycle"
    #: configuration); 0 for the checkpoint substrate.
    aregion_begin_stall: int = 0
    #: if True, an aregion_begin stalls at decode until every preceding
    #: atomic region has committed ("single-inflight" configuration).
    single_inflight_regions: bool = False
    #: best-effort capacity: a region whose read+write set exceeds this many
    #: L1 lines aborts with reason "overflow".
    region_line_limit: int = 448  # ~ 7/8 of a 512-line L1

    # -- forward-progress guarantee (paper §3/§5: "the hardware must
    # -- guarantee forward progress") ---------------------------------------
    #: transparent checkpoint retries for a *conflict* abort before the
    #: hardware gives up and takes the software recovery path (alt-PC).
    region_retry_budget: int = 4
    #: base backoff stall in cycles before a conflict retry; doubles with
    #: each consecutive retry of the same region (exponential backoff).
    region_backoff_cycles: int = 32
    #: consecutive software-visible aborts of one region before its
    #: ``aregion_begin`` is patched to jump straight to the alt-PC
    #: (permanent non-speculative fallback); None disables escalation.
    region_fallback_threshold: int | None = 64

    @property
    def line_shift(self) -> int:
        """log2 of the L1 line size: the granularity at which atomic-region
        read/write sets are tracked and cross-thread conflicts detected."""
        return self.l1_config.line_bytes.bit_length() - 1

    def scaled(self, **changes) -> "HardwareConfig":
        return replace(self, **changes)


#: Table 1 baseline: aggressive 4-wide OOO with checkpoint substrate.
BASELINE_4WIDE = HardwareConfig()

#: §6.3: "a 2-wide OOO version of the baseline machine (widths reduced to 2/2/2)".
OOO_2WIDE = BASELINE_4WIDE.scaled(
    name="2wide", fetch_width=2, issue_width=2, retire_width=2,
)

#: §6.3: "a 2-wide half OOO configuration that halves the superscalar width
#: and all other processor structures (including caches and TLBs)".
OOO_2WIDE_HALF = BASELINE_4WIDE.scaled(
    name="2wide-half",
    fetch_width=2, issue_width=2, retire_width=2,
    instruction_window=64, scheduling_window=32,
    load_buffer=30, store_buffer=20,
    gshare_entries=32 * 1024, bimodal_entries=8 * 1024,
    l1_config=CacheConfig(16 * 1024, 4, 64, 4),
    l2_config=CacheConfig(2 * 1024 * 1024, 8, 64, 20),
    region_line_limit=224,
)

#: Figure 9: checkpoint substrate with a 20-cycle aregion_begin stall.
CHKPT_20CYCLE = BASELINE_4WIDE.scaled(name="4wide+20cyc", aregion_begin_stall=20)

#: Figure 9: only one atomic region in flight at a time.
CHKPT_SINGLE_INFLIGHT = BASELINE_4WIDE.scaled(
    name="4wide-single-inflight", single_inflight_regions=True,
)
