"""Code generation: SSA IR → machine uops.

Pipeline:

1. **SSA destruction** — critical edges are split, then each phi becomes
   parallel copies at the end of its predecessors (sequentialized with a
   cycle-breaking temporary).
2. **Lowering** — each IR node expands to uops.  Safety checks and asserts
   become single fused compare-and-branch uops (to trap and abort stubs
   respectively); monitor operations expand to the reservation-lock
   load/branch/store sequence, while SLE'd monitors are just
   load+branch-to-abort (the paper's "load the value of the lock upon
   monitor entry and verify"); safepoints are a flag load plus a never-taken
   branch (§6.4).
3. **Linear-scan register allocation** — intervals are widened across loop
   back edges (conservative but correct); allocation failures spill to
   per-frame slots with scratch-register fixups at each use/def.

``aregion_begin`` carries the recovery target as an instruction index, so
the hardware can redirect control on aborts without any compiler-generated
compensation code.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..ir.cfg import Block, Graph
from ..ir.ops import Kind, Node
from ..runtime.errors import (
    BoundsError,
    GuestArithmeticError,
    GuestError,
    MonitorStateError,
    NullPointerError,
    VMError,
)
from ..runtime.heap import GuestArray, GuestObject
from ..runtime.interpreter import compare, guest_div, guest_mod, wrap_int
from .isa import CompiledMethod, MInstr, MOp

#: physical registers available to the allocator (rest are scratch).
TOTAL_REGS = 32
SCRATCH_REGS = (29, 30, 31)
ALLOCATABLE = TOTAL_REGS - len(SCRATCH_REGS)

#: address of the global safepoint-yield flag (always cached, §6.4).
SAFEPOINT_FLAG_ADDRESS = 0x1000

_IR_TO_MOP = {
    Kind.ADD: MOp.ADD, Kind.SUB: MOp.SUB, Kind.MUL: MOp.MUL,
    Kind.DIV: MOp.DIV, Kind.MOD: MOp.MOD, Kind.AND: MOp.AND,
    Kind.OR: MOp.OR, Kind.XOR: MOp.XOR, Kind.SHL: MOp.SHL,
    Kind.SHR: MOp.SHR,
}


@dataclass
class _PendingInstr:
    """Instruction with a symbolic branch target (block id or stub key)."""

    instr: MInstr
    target_label: object | None = None


class CodeGenerator:
    """Generates a :class:`CompiledMethod` from an IR graph."""

    def __init__(self, graph: Graph, uses_regions: bool = False) -> None:
        self.graph = graph
        self.uses_regions = uses_regions
        self._vreg_counter = itertools.count()
        self._vreg_of: dict[int, int] = {}
        self._code: list[_PendingInstr] = []
        self._labels: dict[object, int] = {}
        self._abort_stubs: dict[int, tuple[str, int | None, int]] = {}
        self._param_vregs: dict[int, int] = {}
        self._region_entry_labels: dict[int, object] = {}

    # -- public ---------------------------------------------------------------
    def generate(self) -> CompiledMethod:
        split_critical_edges(self.graph)
        copies = lower_phis(self.graph)
        self._emit_all(copies)
        instrs, num_spills, param_locs = self._allocate_registers()
        compiled = CompiledMethod(
            name=self.graph.method_name,
            num_params=self.graph.num_params,
            instrs=instrs,
            num_regs=TOTAL_REGS,
            num_spill_slots=num_spills,
            uses_regions=self.uses_regions,
        )
        compiled.param_locations = param_locs  # type: ignore[attr-defined]
        for abort_id, (reason, src_pc, region_id) in self._abort_stubs.items():
            compiled.abort_sites[abort_id] = (src_pc, region_id)
        for rid, label in self._region_entry_labels.items():
            compiled.region_entries[rid] = self._labels[label]
        return compiled

    # -- vreg assignment ---------------------------------------------------------
    def vreg(self, node: Node) -> int:
        reg = self._vreg_of.get(node.id)
        if reg is None:
            reg = self._vreg_of[node.id] = next(self._vreg_counter)
        return reg

    def _fresh_vreg(self) -> int:
        return next(self._vreg_counter)

    # -- emission ------------------------------------------------------------------
    def _emit(self, instr: MInstr, target_label: object | None = None) -> None:
        self._code.append(_PendingInstr(instr, target_label))

    def _emit_all(self, copies: dict[tuple[int, int], list[tuple[Node, Node]]]) -> None:
        order = self.graph.rpo()
        layout_index = {b.id: i for i, b in enumerate(order)}
        self._current_region: int | None = None

        for position, block in enumerate(order):
            self._labels[("block", block.id)] = len(self._code)
            for node in block.ops:
                self._emit_node(node, block)
            self._emit_terminator(block, order, position, copies)

        # Abort stubs (one per assert/SLE site).
        for abort_id, (reason, src_pc, region_id) in self._abort_stubs.items():
            self._labels[("abort", abort_id)] = len(self._code)
            self._emit(MInstr(
                MOp.AREGION_ABORT, imm=abort_id, cls=reason, src_pc=src_pc,
                abort_id=abort_id,
            ))

        # Resolve labels.
        for pending in self._code:
            if pending.target_label is not None:
                pending.instr.target = self._labels[pending.target_label]

    def _abort_stub_label(self, abort_id: int, reason: str,
                          src_pc: int | None, region_id: int) -> object:
        self._abort_stubs[abort_id] = (reason, src_pc, region_id)
        return ("abort", abort_id)

    # -- per-node lowering -------------------------------------------------------
    def _emit_node(self, node: Node, block: Block) -> None:
        kind = node.kind
        pc = node.bytecode_pc
        if kind is Kind.PARAM:
            self._param_vregs[node.attrs["index"]] = self.vreg(node)
            return
        if kind is Kind.CONST:
            self._emit(MInstr(MOp.CONST, dst=self.vreg(node), imm=node.attrs["imm"], src_pc=pc))
            return
        if kind is Kind.CONST_NULL:
            self._emit(MInstr(MOp.CONST_NULL, dst=self.vreg(node), src_pc=pc))
            return
        if kind is Kind.CONST_CLASS:
            self._emit(MInstr(MOp.CONST_CLASS, dst=self.vreg(node), cls=node.attrs["cls"], src_pc=pc))
            return
        if kind in _IR_TO_MOP:
            self._emit(MInstr(
                _IR_TO_MOP[kind], dst=self.vreg(node),
                a=self.vreg(node.operands[0]), b=self.vreg(node.operands[1]),
                src_pc=pc,
            ))
            return
        if kind is Kind.CLASSOF:
            self._emit(MInstr(MOp.CLASSOF, dst=self.vreg(node),
                              a=self.vreg(node.operands[0]), src_pc=pc))
            return
        if kind is Kind.ALEN:
            self._emit(MInstr(MOp.LOADLEN, dst=self.vreg(node),
                              a=self.vreg(node.operands[0]), src_pc=pc))
            return
        if kind is Kind.GETFIELD:
            self._emit(MInstr(MOp.LOADF, dst=self.vreg(node),
                              a=self.vreg(node.operands[0]),
                              fieldname=node.attrs["field"], src_pc=pc))
            return
        if kind is Kind.PUTFIELD:
            self._emit(MInstr(MOp.STOREF, a=self.vreg(node.operands[0]),
                              b=self.vreg(node.operands[1]),
                              fieldname=node.attrs["field"], src_pc=pc))
            return
        if kind is Kind.FAA:
            self._emit(MInstr(MOp.FAA, dst=self.vreg(node),
                              a=self.vreg(node.operands[0]),
                              b=self.vreg(node.operands[1]),
                              fieldname=node.attrs["field"], src_pc=pc))
            return
        if kind is Kind.CAS:
            self._emit(MInstr(MOp.CAS, dst=self.vreg(node),
                              a=self.vreg(node.operands[0]),
                              b=self.vreg(node.operands[1]),
                              c=self.vreg(node.operands[2]),
                              fieldname=node.attrs["field"], src_pc=pc))
            return
        if kind is Kind.LL:
            self._emit(MInstr(MOp.LL, dst=self.vreg(node),
                              a=self.vreg(node.operands[0]),
                              fieldname=node.attrs["field"], src_pc=pc))
            return
        if kind is Kind.SC:
            self._emit(MInstr(MOp.SC, dst=self.vreg(node),
                              a=self.vreg(node.operands[0]),
                              b=self.vreg(node.operands[1]),
                              fieldname=node.attrs["field"], src_pc=pc))
            return
        if kind is Kind.ALOAD:
            self._emit(MInstr(MOp.LOADA, dst=self.vreg(node),
                              a=self.vreg(node.operands[0]),
                              b=self.vreg(node.operands[1]), src_pc=pc))
            return
        if kind is Kind.ASTORE:
            self._emit(MInstr(MOp.STOREA, a=self.vreg(node.operands[0]),
                              b=self.vreg(node.operands[1]),
                              c=self.vreg(node.operands[2]), src_pc=pc))
            return
        if kind is Kind.NEW:
            self._emit(MInstr(MOp.NEWOBJ, dst=self.vreg(node),
                              cls=node.attrs["cls"], src_pc=pc))
            return
        if kind is Kind.NEWARR:
            self._emit(MInstr(MOp.NEWARR, dst=self.vreg(node),
                              a=self.vreg(node.operands[0]), src_pc=pc))
            return
        if kind in (Kind.CALL, Kind.VCALL):
            mop = MOp.CALLVM if kind is Kind.CALL else MOp.VCALLVM
            self._emit(MInstr(
                mop, dst=self.vreg(node), method=node.attrs["method"],
                args=tuple(self.vreg(op) for op in node.operands), src_pc=pc,
            ))
            return
        if kind is Kind.CHECK_NULL:
            self._emit(MInstr(MOp.BR_TRAP, cond="eq", fieldname="null",
                              a=self.vreg(node.operands[0]), src_pc=pc))
            return
        if kind is Kind.CHECK_BOUNDS:
            # Unsigned trick: trap when (unsigned)idx >= length.
            self._emit(MInstr(MOp.BR_TRAP, cond="uge", fieldname="bounds",
                              a=self.vreg(node.operands[1]),
                              b=self.vreg(node.operands[0]), src_pc=pc))
            return
        if kind is Kind.CHECK_DIV0:
            self._emit(MInstr(MOp.BR_TRAP, cond="eq", fieldname="div0",
                              a=self.vreg(node.operands[0]), src_pc=pc))
            return
        if kind is Kind.CHECK_CLASS:
            expected = self._fresh_vreg()
            self._emit(MInstr(MOp.CONST_CLASS, dst=expected, cls=node.attrs["cls"], src_pc=pc))
            self._emit(MInstr(MOp.BR_TRAP, cond="ne", fieldname="class",
                              a=self.vreg(node.operands[0]), b=expected, src_pc=pc))
            return
        if kind is Kind.MONITOR_ENTER:
            self._lower_monitor(node, enter=True)
            return
        if kind is Kind.MONITOR_EXIT:
            self._lower_monitor(node, enter=False)
            return
        if kind is Kind.SLE_ENTER:
            obj = self.vreg(node.operands[0])
            temp = self._fresh_vreg()
            abort_id = _next_abort_id()
            label = self._abort_stub_label(
                abort_id, "sle", node.bytecode_pc, self._current_region or -1
            )
            self._emit(MInstr(MOp.LOADLOCK, dst=temp, a=obj, src_pc=pc))
            self._emit(MInstr(MOp.BR_ABORT, cond="gt", a=temp,
                              abort_id=abort_id, src_pc=pc), target_label=label)
            return
        if kind is Kind.ASSERT:
            abort_id = node.attrs.get("abort_id", _next_abort_id())
            label = self._abort_stub_label(
                abort_id, "assert", node.bytecode_pc, self._current_region or -1
            )
            self._emit(MInstr(
                MOp.BR_ABORT, cond=node.attrs["cond"],
                a=self.vreg(node.operands[0]), b=self.vreg(node.operands[1]),
                abort_id=abort_id, src_pc=pc,
            ), target_label=label)
            return
        if kind is Kind.AREGION_END:
            self._emit(MInstr(MOp.AREGION_END, src_pc=pc))
            self._current_region = None
            return
        if kind is Kind.SAFEPOINT:
            temp = self._fresh_vreg()
            self._emit(MInstr(MOp.LOADG, dst=temp, imm=SAFEPOINT_FLAG_ADDRESS, src_pc=pc))
            # Never-taken branch to the following instruction (a real JVM
            # would jump to the yield stub; the flag is never set here).
            self._emit(MInstr(MOp.BR, cond="ne", a=temp, src_pc=pc,
                              target=len(self._code) + 1))
            return
        if kind is Kind.PHI:
            raise AssertionError("phis must be lowered before emission")
        raise AssertionError(f"unhandled IR kind {kind}")

    def _lower_monitor(self, node: Node, enter: bool) -> None:
        """Reservation-lock fast path: load lock word, check, store (3 uops
        on both enter and exit — the overhead SLE removes)."""
        pc = node.bytecode_pc
        obj = self.vreg(node.operands[0])
        temp = self._fresh_vreg()
        self._emit(MInstr(MOp.LOADLOCK, dst=temp, a=obj, src_pc=pc))
        self._emit(MInstr(MOp.BR, cond="gt", a=temp, src_pc=pc,
                          target=len(self._code) + 1))  # contended: slow path
        self._emit(MInstr(MOp.STORELOCK, a=obj, imm=(1 if enter else -1), src_pc=pc))

    # -- terminators --------------------------------------------------------------
    def _emit_terminator(self, block: Block, order, position, copies) -> None:
        term = block.terminator
        next_block = order[position + 1] if position + 1 < len(order) else None

        def emit_copies(succ_index: int) -> None:
            for dst_node, src_node in copies.get((block.id, succ_index), ()):  # phi <- value
                self._emit(MInstr(MOp.MOV, dst=self.vreg(dst_node),
                                  a=self.vreg(src_node)))

        kind = term.kind
        if kind is Kind.RETURN:
            value = self.vreg(term.operands[0]) if term.operands else None
            self._emit(MInstr(MOp.RET, a=value, src_pc=term.bytecode_pc))
            return
        if kind is Kind.JUMP:
            emit_copies(0)
            succ = block.succs[0]
            if next_block is None or succ is not next_block:
                self._emit(MInstr(MOp.JMP, src_pc=term.bytecode_pc),
                           target_label=("block", succ.id))
            return
        if kind is Kind.BRANCH:
            taken, fall = block.succs
            # Copies were pushed into split blocks, so a two-successor block
            # never carries edge copies.
            assert (block.id, 0) not in copies and (block.id, 1) not in copies
            self._emit(MInstr(
                MOp.BR, cond=term.attrs["cond"],
                a=self.vreg(term.operands[0]), b=self.vreg(term.operands[1]),
                src_pc=term.bytecode_pc,
            ), target_label=("block", taken.id))
            if next_block is None or fall is not next_block:
                self._emit(MInstr(MOp.JMP), target_label=("block", fall.id))
            return
        if kind is Kind.REGION_BEGIN:
            spec, recovery = block.succs
            assert (block.id, 0) not in copies and (block.id, 1) not in copies
            rid = term.attrs.get("region_id", -1)
            self._current_region = rid
            label = ("region", rid)
            self._region_entry_labels[rid] = label
            self._labels[label] = len(self._code)
            self._emit(MInstr(MOp.AREGION_BEGIN, imm=rid, src_pc=term.bytecode_pc),
                       target_label=("block", recovery.id))
            if next_block is None or spec is not next_block:
                self._emit(MInstr(MOp.JMP), target_label=("block", spec.id))
            return
        raise AssertionError(f"unhandled terminator {kind}")

    # -- register allocation --------------------------------------------------------
    def _allocate_registers(self):
        instrs = [p.instr for p in self._code]
        intervals = _live_intervals(instrs)
        # Parameters arrive in their locations at entry: live from position 0.
        for vreg in self._param_vregs.values():
            if vreg in intervals:
                intervals[vreg][0] = 0
        _extend_across_loops(instrs, intervals)
        instrs, coalesce_map = _coalesce_moves(instrs, intervals, self._param_vregs)
        # Re-point label indices: coalescing removed some MOVs.
        for key in self._labels:
            self._labels[key] = coalesce_map[self._labels[key]]
        for instr in instrs:
            if instr.target is not None:
                instr.target = coalesce_map[instr.target]
        assignment, spills = _linear_scan(intervals)
        final, index_map, num_slots, param_locs = _rewrite(
            instrs, assignment, spills, self._param_vregs
        )
        # Remap labels through the rewrite.
        for key in self._labels:
            self._labels[key] = index_map[self._labels[key]]
        for instr in final:
            if instr.target is not None:
                instr.target = index_map[instr.target]
        return final, num_slots, param_locs


_abort_id_counter = itertools.count(10_000)


def _next_abort_id() -> int:
    return next(_abort_id_counter)


# -- SSA destruction ---------------------------------------------------------

def split_critical_edges(graph: Graph) -> int:
    """Split edges that would otherwise need copies on a multi-successor
    terminator: classic critical edges, plus any edge from a two-successor
    block (BRANCH or REGION_BEGIN) into a block with phis — this guarantees
    phi copies always land in single-in/single-out blocks."""
    split = 0
    for block in list(graph.blocks):
        if len(block.succs) < 2:
            continue
        for index in range(len(block.succs)):
            succ = block.succs[index]
            if len(succ.preds) < 2 and not succ.phis:
                continue
            middle = graph.new_block(src_pc=block.src_pc)
            middle.count = block.edge_count_to(index)
            middle.region_id = block.region_id
            values = _edge_values(block, index, succ)
            graph.replace_succ(block, index, middle)
            graph.set_terminator(middle, Node(Kind.JUMP), [])
            graph._link(middle, succ, phi_values=values)
            split += 1
    return split


def _edge_values(pred: Block, succ_index: int, succ: Block) -> list[Node]:
    for pos, (p, idx) in enumerate(succ.preds):
        if p is pred and idx == succ_index:
            return [phi.operands[pos] for phi in succ.phis]
    raise AssertionError("edge not found")


def lower_phis(graph: Graph) -> dict[tuple[int, int], list[tuple[Node, Node]]]:
    """Convert phis to per-edge parallel copies.

    Returns ``(pred block id, succ index) -> [(phi, value), ...]`` with each
    list sequentialized so copies can be emitted in order (a temporary CONST
    proxy breaks copy cycles).  Phi nodes are removed from their blocks; the
    code generator assigns them vregs like any other value.
    """
    copies: dict[tuple[int, int], list[tuple[Node, Node]]] = {}
    for block in graph.blocks:
        if not block.phis:
            continue
        for pos, (pred, succ_index) in enumerate(block.preds):
            pairs = [(phi, phi.operands[pos]) for phi in block.phis
                     if phi.operands[pos] is not phi]
            copies[(pred.id, succ_index)] = _sequentialize(pairs)
        for phi in block.phis:
            phi.operands = []
        block.phis = []  # phis now live as copy destinations only
    return copies


def _sequentialize(pairs: list[tuple[Node, Node]]) -> list[tuple[Node, Node]]:
    """Order parallel copies; break cycles with a temp node."""
    pending = [(dst, src) for dst, src in pairs if dst is not src]
    ordered: list[tuple[Node, Node]] = []
    while pending:
        progressed = False
        for i, (dst, src) in enumerate(pending):
            # Safe to emit when no later copy still needs to *read* dst.
            if not any(s is dst for (d, s) in pending if d is not dst):
                ordered.append((dst, src))
                pending.pop(i)
                progressed = True
                break
        if not progressed:
            # Cycle: rotate through a temp.
            dst, src = pending.pop(0)
            temp = Node(Kind.PHI)  # placeholder value node for a temp vreg
            ordered.append((temp, dst))
            ordered.append((dst, src))
            for j, (d2, s2) in enumerate(pending):
                if s2 is dst:
                    pending[j] = (d2, temp)
    return ordered


# -- linear scan -----------------------------------------------------------------

def _instr_reads(instr: MInstr) -> list[int]:
    regs = [r for r in (instr.a, instr.b, instr.c) if r is not None]
    regs.extend(instr.args)
    return regs


def _machine_blocks(instrs: list[MInstr]):
    """Partition the linear code into blocks with successor edges.

    For liveness purposes, ``AREGION_BEGIN`` has an edge to its alternate
    (recovery) target: an abort restores the checkpointed register file, so
    values the recovery path needs must be live *at the begin* — but not
    through the speculative body, whose clobbers are undone by the rollback.
    ``AREGION_ABORT`` consequently has no successors at all.
    """
    leaders = {0}
    for pos, instr in enumerate(instrs):
        if instr.target is not None:
            leaders.add(instr.target)
        if instr.op in (MOp.BR, MOp.JMP, MOp.RET, MOp.BR_ABORT,
                        MOp.AREGION_BEGIN, MOp.AREGION_ABORT):
            if pos + 1 < len(instrs):
                leaders.add(pos + 1)
    starts = sorted(leaders)
    blocks = []
    for i, start in enumerate(starts):
        end = starts[i + 1] if i + 1 < len(starts) else len(instrs)
        last = instrs[end - 1]
        succs: list[int] = []
        if last.op is MOp.JMP:
            succs = [last.target]
        elif last.op in (MOp.BR, MOp.BR_ABORT):
            succs = [last.target]
            if end < len(instrs):
                succs.append(end)
        elif last.op is MOp.AREGION_BEGIN:
            succs = []
            if end < len(instrs):
                succs.append(end)
            succs.append(last.target)  # recovery liveness flows to the begin
        elif last.op in (MOp.RET, MOp.AREGION_ABORT):
            succs = []
        else:
            if end < len(instrs):
                succs = [end]
        blocks.append((start, end, succs))
    index_of = {start: i for i, (start, _, _) in enumerate(blocks)}
    return blocks, index_of


def _live_intervals(instrs: list[MInstr]) -> dict[int, list[int]]:
    """Dataflow-precise conservative live intervals: vreg -> [start, end].

    Backward liveness over machine blocks, then each vreg's interval covers
    every position at which it is live or defined.  Loop-carried values get
    extended around their back edges by the fixpoint itself; values dead at
    a loop header are not (unlike blanket back-edge widening, which inflates
    register pressure enough to cause spills in region-formed code).
    """
    blocks, index_of = _machine_blocks(instrs)
    nblocks = len(blocks)
    use_sets: list[set[int]] = [set() for _ in range(nblocks)]
    def_sets: list[set[int]] = [set() for _ in range(nblocks)]
    for bi, (start, end, _) in enumerate(blocks):
        defined: set[int] = set()
        for pos in range(start, end):
            instr = instrs[pos]
            for reg in _instr_reads(instr):
                if reg >= 0 and reg not in defined:
                    use_sets[bi].add(reg)
            if instr.dst is not None:
                defined.add(instr.dst)
        def_sets[bi] = defined

    live_in: list[set[int]] = [set() for _ in range(nblocks)]
    live_out: list[set[int]] = [set() for _ in range(nblocks)]
    changed = True
    while changed:
        changed = False
        for bi in range(nblocks - 1, -1, -1):
            start, end, succs = blocks[bi]
            out: set[int] = set()
            for succ_start in succs:
                out |= live_in[index_of[succ_start]]
            new_in = use_sets[bi] | (out - def_sets[bi])
            if out != live_out[bi] or new_in != live_in[bi]:
                live_out[bi] = out
                live_in[bi] = new_in
                changed = True

    intervals: dict[int, list[int]] = {}

    def touch(reg: int, pos: int) -> None:
        iv = intervals.get(reg)
        if iv is None:
            intervals[reg] = [pos, pos]
        else:
            if pos < iv[0]:
                iv[0] = pos
            if pos > iv[1]:
                iv[1] = pos

    for bi, (start, end, _) in enumerate(blocks):
        for reg in live_in[bi]:
            touch(reg, start)
        for reg in live_out[bi]:
            touch(reg, end - 1)
        for pos in range(start, end):
            instr = instrs[pos]
            for reg in _instr_reads(instr):
                if reg >= 0:
                    touch(reg, pos)
            if instr.dst is not None:
                touch(instr.dst, pos)
    return intervals


def _extend_across_loops(instrs: list[MInstr], intervals: dict[int, list[int]]) -> None:
    """Liveness-based intervals already cover loop-carried ranges; kept as a
    no-op hook for API stability."""
    return None


def _coalesce_moves(instrs, intervals, param_vregs):
    """Register-copy coalescing: merge MOV-connected vregs whose live
    intervals do not conflict, then delete the now-redundant MOVs.

    Phi lowering produces one copy per live value on every region exit and
    loop edge; without coalescing those copies would be real retired uops,
    charging small atomic regions an artificial exit tax no production
    register allocator would pay.

    Returns ``(new_instrs, index_map)`` where ``index_map[old] = new``.
    """
    parent: dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(x, x) != x:
            parent[x], x = root, parent[x]
        return root

    for pos, instr in enumerate(instrs):
        if instr.op is not MOp.MOV or instr.dst is None or instr.a is None:
            continue
        src, dst = find(instr.a), find(instr.dst)
        if src == dst:
            continue
        iv_src = intervals.get(src)
        iv_dst = intervals.get(dst)
        if iv_src is None or iv_dst is None:
            continue
        # Safe to merge when the intervals touch at most at this MOV.
        if iv_src[1] <= iv_dst[0] or iv_dst[1] <= iv_src[0]:
            parent[dst] = src
            iv_src[0] = min(iv_src[0], iv_dst[0])
            iv_src[1] = max(iv_src[1], iv_dst[1])
            del intervals[dst]

    # Rewrite registers to representatives.
    def m(reg):
        return find(reg) if reg is not None and reg >= 0 else reg

    for instr in instrs:
        instr.a = m(instr.a)
        instr.b = m(instr.b)
        instr.c = m(instr.c)
        instr.dst = m(instr.dst)
        if instr.args:
            instr.args = tuple(m(r) for r in instr.args)
    for index in list(param_vregs):
        param_vregs[index] = find(param_vregs[index])

    # Drop self-moves, building the index map.
    new_instrs: list[MInstr] = []
    index_map: list[int] = []
    for instr in instrs:
        index_map.append(len(new_instrs))
        if instr.op is MOp.MOV and instr.a == instr.dst:
            continue
        new_instrs.append(instr)
    index_map.append(len(new_instrs))
    # Retarget within the new numbering happens in the caller.
    return new_instrs, index_map


def _linear_scan(intervals: dict[int, list[int]]):
    """Classic linear scan; returns (vreg -> phys reg, vreg -> spill slot)."""
    order = sorted(intervals.items(), key=lambda kv: kv[1][0])
    free = list(range(ALLOCATABLE))
    active: list[tuple[int, int]] = []  # (end, vreg)
    assignment: dict[int, int] = {}
    spills: dict[int, int] = {}
    next_slot = 0

    for vreg, (start, end) in order:
        # Expire intervals that ended before this one starts.
        still_active = []
        for entry in active:
            if entry[0] < start:
                free.append(assignment[entry[1]])
            else:
                still_active.append(entry)
        active = still_active
        if free:
            reg = free.pop()
            assignment[vreg] = reg
            active.append((end, vreg))
            active.sort()
        else:
            # Spill the interval with the furthest end.
            furthest_end, furthest_vreg = active[-1]
            if furthest_end > end:
                assignment[vreg] = assignment.pop(furthest_vreg)
                spills[furthest_vreg] = next_slot
                next_slot += 1
                active.pop()
                active.append((end, vreg))
                active.sort()
            else:
                spills[vreg] = next_slot
                next_slot += 1
    return assignment, spills


def _rewrite(instrs, assignment, spills, param_vregs):
    """Apply the allocation: map vregs, insert spill loads/stores."""
    final: list[MInstr] = []
    index_map: list[int] = []

    def map_src(reg: int | None, scratch_pool: list[int]) -> int | None:
        if reg is None:
            return None
        if reg in assignment:
            return assignment[reg]
        slot = spills[reg]
        scratch = scratch_pool.pop()
        final.append(MInstr(MOp.LOADSPILL, dst=scratch, imm=slot))
        return scratch

    for instr in instrs:
        index_map.append(len(final))
        scratch_pool = list(SCRATCH_REGS)
        instr.a = map_src(instr.a, scratch_pool)
        instr.b = map_src(instr.b, scratch_pool)
        instr.c = map_src(instr.c, scratch_pool)
        if instr.args:
            # Spill-resident call arguments are encoded as negative values
            # (-slot - 1): the machine's call bridge reads them straight
            # from the spill frame, which models a memory-argument calling
            # convention without clobbering scratch registers.
            mapped = []
            for reg in instr.args:
                if reg in assignment:
                    mapped.append(assignment[reg])
                else:
                    mapped.append(-spills[reg] - 1)
            instr.args = tuple(mapped)
        if instr.dst is not None:
            if instr.dst in assignment:
                instr.dst = assignment[instr.dst]
                final.append(instr)
            else:
                slot = spills[instr.dst]
                scratch = SCRATCH_REGS[-1]
                instr.dst = scratch
                final.append(instr)
                final.append(MInstr(MOp.STORESPILL, a=scratch, imm=slot))
        else:
            final.append(instr)
    index_map.append(len(final))

    param_locs = []
    for index in sorted(param_vregs):
        vreg = param_vregs[index]
        if vreg in assignment:
            param_locs.append(("r", assignment[vreg]))
        elif vreg in spills:
            param_locs.append(("s", spills[vreg]))
        else:
            param_locs.append(("r", 0))  # parameter never used
    num_slots = (max(spills.values()) + 1) if spills else 0
    return final, index_map, num_slots, param_locs


def generate_code(graph: Graph, uses_regions: bool = False) -> CompiledMethod:
    """Convenience wrapper."""
    return CodeGenerator(graph, uses_regions=uses_regions).generate()


# ---------------------------------------------------------------------------
# Pre-decoded dispatch
# ---------------------------------------------------------------------------
#
# The machine's interpretive loop pays a long if/elif dispatch chain plus
# per-step attribute traffic for every retired uop.  ``predecode`` converts
# a :class:`CompiledMethod` once into a pc-indexed array of *bound handler
# closures* — one per uop, with register numbers, immediates, branch
# targets, field names, and the cache-line shift resolved at decode time —
# grouped into basic-block spans (the BasicBlocker shape: decode once per
# block, not once per dynamic step).  Each handler performs exactly the
# work of one slow-path loop iteration (counters, the op itself,
# timing/loads accounting, and the retirement-time hardware-condition
# check) and returns the next pc, so the fast execution loop is nothing
# but ``pc = handlers[pc](frame)``.
#
# The contract is strict observational equivalence: byte-identical
# ``ExecStats``, identical timing-model inputs in identical order,
# identical heap/address allocation order, and identical exception/abort
# behavior versus the interpretive loop (enforced seed-by-seed in
# ``tests/test_differential.py``).  Handlers therefore never consult the
# tracer — the machine falls back to the interpretive loop whenever
# tracing is enabled or a scheduler is attached — and read
# ``disabled_regions`` dynamically so a forward-progress patch takes
# effect mid-run exactly like the slow path; the cached form is dropped
# via :meth:`CompiledMethod.disable_region` alongside the patch.


class ExecFrame:
    """Mutable per-activation state shared by the bound handlers."""

    __slots__ = (
        "machine", "compiled", "regs", "spill", "spill_base", "code_base",
        "region", "tid", "stats", "timing", "ret",
    )


@dataclass
class PredecodedMethod:
    """The pre-decoded dispatch form of one :class:`CompiledMethod`."""

    #: cache-line shift baked into the read/write-set line math.
    line_shift: int
    #: pc-indexed bound handler closures.
    handlers: list
    #: basic-block spans ``(start, end)`` over the handler array.
    blocks: list

    def block_handlers(self, index: int) -> list:
        """The handler slice of one basic block (block-granular view)."""
        start, end = self.blocks[index]
        return self.handlers[start:end]


def machine_compare(cond: str, a, b) -> bool:
    """Machine branch-condition semantics (shared with the slow path).

    ``uge`` is the unsigned bounds-check comparison (negative indexes wrap
    to huge values); a missing second operand compares integers against
    zero / references against null.
    """
    if cond == "uge":
        ua = a & 0xFFFFFFFFFFFFFFFF
        ub = b & 0xFFFFFFFFFFFFFFFF
        return ua >= ub
    if b is None and cond in ("eq", "ne", "gt", "lt", "ge", "le"):
        if isinstance(a, int):
            b = 0
    return compare(cond, a, b)


def get_predecoded(compiled: CompiledMethod, line_shift: int) -> PredecodedMethod:
    """Return the cached pre-decoded form, rebuilding it when stale.

    The cache lives on the code object (so a recompile naturally starts
    from nothing) and is keyed by the line shift: the same code run under
    a hardware config with a different L1 line size must re-resolve its
    read/write-set line math.
    """
    pre = compiled._predecoded
    if pre is None or pre.line_shift != line_shift:
        pre = predecode(compiled, line_shift)
    return pre


def predecode(compiled: CompiledMethod, line_shift: int) -> PredecodedMethod:
    """Pre-decode ``compiled`` into per-block arrays of handler closures."""
    instrs = compiled.instrs
    handlers = [
        _make_handler(compiled, instrs[pc], pc, line_shift)
        for pc in range(len(instrs))
    ]
    blocks, _ = _machine_blocks(instrs)
    spans = [(start, end) for start, end, _succs in blocks]
    pre = PredecodedMethod(line_shift=line_shift, handlers=handlers,
                           blocks=spans)
    compiled._predecoded = pre
    return pre


def _make_handler(compiled: CompiledMethod, instr: MInstr, pc: int,
                  line_shift: int):
    """Build the bound closure executing one uop of ``compiled``.

    Every handler mirrors one iteration of the machine's interpretive
    loop: retire counters first, then the op, then timing/load
    accounting, then (inside a region) the retirement-time hardware
    condition check.  Control-flow handlers replicate the slow path's
    ``continue`` points exactly — a taken branch ticks and then checks
    the hardware condition at its *target* pc, a jump ticks and skips the
    check, and every abort path skips the tick of the aborting uop.
    """
    op = instr.op
    nxt = pc + 1
    mypc = pc
    dst, a, b, c = instr.dst, instr.a, instr.b, instr.c
    imm, target, cond = instr.imm, instr.target, instr.cond
    shift = line_shift

    # -- straight-line ALU ------------------------------------------------
    if op in _FAST_ALU:
        alu = _FAST_ALU[op]

        def h_alu(fr, _alu=alu):
            mach = fr.machine
            mach.uops_executed += 1
            st = fr.stats
            st.uops_retired += 1
            region = fr.region
            if region is not None:
                region.uops += 1
                region.record.uops += 1
            regs = fr.regs
            try:
                regs[dst] = _alu(regs[a], regs[b])
            except GuestError:
                if region is None:
                    raise
                return mach._fast_exception(fr, mypc)
            timing = fr.timing
            if timing is not None:
                timing.uop(instr, None)
            if region is not None:
                reason = mach._hw_condition(region)
                if reason is not None:
                    return mach._fast_abort(fr, reason, nxt)
            return nxt

        return h_alu

    if op is MOp.CONST or op is MOp.CONST_NULL or op is MOp.CONST_CLASS:
        value = (imm if op is MOp.CONST
                 else None if op is MOp.CONST_NULL else instr.cls)

        def h_const(fr):
            fr.machine.uops_executed += 1
            fr.stats.uops_retired += 1
            region = fr.region
            if region is not None:
                region.uops += 1
                region.record.uops += 1
            fr.regs[dst] = value
            timing = fr.timing
            if timing is not None:
                timing.uop(instr, None)
            if region is not None:
                reason = fr.machine._hw_condition(region)
                if reason is not None:
                    return fr.machine._fast_abort(fr, reason, nxt)
            return nxt

        return h_const

    if op is MOp.MOV:

        def h_mov(fr):
            fr.machine.uops_executed += 1
            fr.stats.uops_retired += 1
            region = fr.region
            if region is not None:
                region.uops += 1
                region.record.uops += 1
            regs = fr.regs
            regs[dst] = regs[a]
            timing = fr.timing
            if timing is not None:
                timing.uop(instr, None)
            if region is not None:
                reason = fr.machine._hw_condition(region)
                if reason is not None:
                    return fr.machine._fast_abort(fr, reason, nxt)
            return nxt

        return h_mov

    # -- memory -----------------------------------------------------------
    if op is MOp.CLASSOF:

        def h_classof(fr):
            mach = fr.machine
            mach.uops_executed += 1
            st = fr.stats
            st.uops_retired += 1
            region = fr.region
            if region is not None:
                region.uops += 1
                region.record.uops += 1
            ref = fr.regs[a]
            if ref is None:
                if region is None:
                    raise NullPointerError("classof null")
                return mach._fast_exception(fr, mypc)
            fr.regs[dst] = (
                ref.class_name if isinstance(ref, GuestObject) else "[array]"
            )
            mem = ref.base
            if region is not None:
                region.read_lines.add(mem >> shift)
            st.loads += 1
            timing = fr.timing
            if timing is not None:
                timing.uop(instr, mem)
            if region is not None:
                reason = mach._hw_condition(region)
                if reason is not None:
                    return mach._fast_abort(fr, reason, nxt)
            return nxt

        return h_classof

    if op is MOp.LOADF or op is MOp.STOREF:
        fieldname = instr.fieldname
        is_load = op is MOp.LOADF

        def h_field(fr):
            mach = fr.machine
            mach.uops_executed += 1
            st = fr.stats
            st.uops_retired += 1
            region = fr.region
            if region is not None:
                region.uops += 1
                region.record.uops += 1
            regs = fr.regs
            obj = regs[a]
            if obj is None or not isinstance(obj, GuestObject):
                if region is None:
                    if obj is None:
                        raise NullPointerError("null dereference")
                    raise VMError(
                        f"expected GuestObject, got {type(obj).__name__}"
                    )
                if obj is None:
                    return mach._fast_exception(fr, mypc)
                raise VMError(
                    f"expected GuestObject, got {type(obj).__name__}"
                )
            slot = obj.field_index[fieldname]
            mem = obj.base + 16 + slot * 8
            if is_load:
                if region is not None:
                    region.read_lines.add(mem >> shift)
                    buffered = region.store_buffer.get((id(obj), "f", slot))
                    if buffered is not None:
                        regs[dst] = buffered[2]
                    else:
                        regs[dst] = obj.slots[slot]
                else:
                    regs[dst] = obj.slots[slot]
                st.loads += 1
            else:
                value = regs[b]
                if region is None:
                    obj.slots[slot] = value
                else:
                    region.store_buffer[(id(obj), "f", slot)] = (
                        obj, slot, value)
                    region.write_lines.add(mem >> shift)
                st.stores += 1
            timing = fr.timing
            if timing is not None:
                timing.uop(instr, mem)
            if region is not None:
                reason = mach._hw_condition(region)
                if reason is not None:
                    return mach._fast_abort(fr, reason, nxt)
            return nxt

        return h_field

    if op is MOp.LOADA or op is MOp.STOREA:
        is_load = op is MOp.LOADA

        def h_array(fr):
            mach = fr.machine
            mach.uops_executed += 1
            st = fr.stats
            st.uops_retired += 1
            region = fr.region
            if region is not None:
                region.uops += 1
                region.record.uops += 1
            regs = fr.regs
            arr = regs[a]
            if arr is None or not isinstance(arr, GuestArray):
                if arr is None:
                    if region is None:
                        raise NullPointerError("null dereference")
                    return mach._fast_exception(fr, mypc)
                raise VMError(
                    f"expected GuestArray, got {type(arr).__name__}"
                )
            index = regs[b]
            if not 0 <= index < len(arr.values):
                if region is None:
                    raise BoundsError(index, len(arr.values))
                return mach._fast_exception(fr, mypc)
            mem = arr.element_address(index)
            if is_load:
                if region is not None:
                    region.read_lines.add(mem >> shift)
                    buffered = region.store_buffer.get((id(arr), "a", index))
                    if buffered is not None:
                        regs[dst] = buffered[2]
                    else:
                        regs[dst] = arr.values[index]
                else:
                    regs[dst] = arr.values[index]
                st.loads += 1
            else:
                value = regs[c]
                if region is None:
                    arr.values[index] = value
                else:
                    region.store_buffer[(id(arr), "a", index)] = (
                        arr, index, value)
                    region.write_lines.add(mem >> shift)
                st.stores += 1
            timing = fr.timing
            if timing is not None:
                timing.uop(instr, mem)
            if region is not None:
                reason = mach._hw_condition(region)
                if reason is not None:
                    return mach._fast_abort(fr, reason, nxt)
            return nxt

        return h_array

    if op is MOp.LOADLEN:

        def h_loadlen(fr):
            mach = fr.machine
            mach.uops_executed += 1
            st = fr.stats
            st.uops_retired += 1
            region = fr.region
            if region is not None:
                region.uops += 1
                region.record.uops += 1
            arr = fr.regs[a]
            if arr is None or not isinstance(arr, GuestArray):
                if arr is None:
                    if region is None:
                        raise NullPointerError("null dereference")
                    return mach._fast_exception(fr, mypc)
                raise VMError(
                    f"expected GuestArray, got {type(arr).__name__}"
                )
            mem = arr.length_address()
            if region is not None:
                region.read_lines.add(mem >> shift)
            fr.regs[dst] = arr.length
            st.loads += 1
            timing = fr.timing
            if timing is not None:
                timing.uop(instr, mem)
            if region is not None:
                reason = mach._hw_condition(region)
                if reason is not None:
                    return mach._fast_abort(fr, reason, nxt)
            return nxt

        return h_loadlen

    if op is MOp.LOADLOCK:

        def h_loadlock(fr):
            mach = fr.machine
            mach.uops_executed += 1
            st = fr.stats
            st.uops_retired += 1
            region = fr.region
            if region is not None:
                region.uops += 1
                region.record.uops += 1
            obj = fr.regs[a]
            if obj is None or not isinstance(obj, GuestObject):
                if obj is None:
                    if region is None:
                        raise NullPointerError("null dereference")
                    return mach._fast_exception(fr, mypc)
                raise VMError(
                    f"expected GuestObject, got {type(obj).__name__}"
                )
            mem = obj.lock_address()
            if region is not None:
                region.read_lines.add(mem >> shift)
            fr.regs[dst] = 1 if obj.lock.held_by_other(fr.tid) else 0
            st.monitor_ops += 1
            st.loads += 1
            timing = fr.timing
            if timing is not None:
                timing.uop(instr, mem)
            if region is not None:
                reason = mach._hw_condition(region)
                if reason is not None:
                    return mach._fast_abort(fr, reason, nxt)
            return nxt

        return h_loadlock

    if op is MOp.STORELOCK:
        enter = imm == 1

        def h_storelock(fr):
            mach = fr.machine
            mach.uops_executed += 1
            st = fr.stats
            st.uops_retired += 1
            region = fr.region
            if region is not None:
                region.uops += 1
                region.record.uops += 1
            obj = fr.regs[a]
            if obj is None or not isinstance(obj, GuestObject):
                if obj is None:
                    if region is None:
                        raise NullPointerError("null dereference")
                    return mach._fast_exception(fr, mypc)
                raise VMError(
                    f"expected GuestObject, got {type(obj).__name__}"
                )
            lock = obj.lock
            mem = obj.lock_address()
            tid = fr.tid
            try:
                if region is not None:
                    pre = (lock.owner, lock.depth, lock.reserver)
                    region.write_lines.add(mem >> shift)
                    if enter:
                        outcome = lock.enter(tid)
                        if outcome == "blocked":
                            # A speculative region must not wait: genuine
                            # contention aborts as a real conflict.
                            region.real_conflict = True
                            timing = fr.timing
                            if timing is not None:
                                timing.uop(instr, mem)
                            pc2 = mach._do_abort(
                                fr.compiled, region, "conflict",
                                fr.code_base + mypc, None, fr.regs, fr.spill,
                            )
                            fr.region = None
                            return pc2
                    else:
                        lock.exit(tid)
                    region.lock_log.append(
                        (lock, pre,
                         (lock.owner, lock.depth, lock.reserver))
                    )
                elif enter:
                    outcome = lock.enter(tid)
                    if outcome == "blocked":
                        # The fast path never runs with a scheduler
                        # attached, so contention is a guest monitor error.
                        raise MonitorStateError(
                            f"monitor owned by thread {lock.owner} "
                            f"contended by thread {tid} with no "
                            "scheduler attached"
                        )
                else:
                    lock.exit(tid)
            except GuestError:
                if fr.region is None:
                    raise
                return mach._fast_exception(fr, mypc)
            st.stores += 1
            timing = fr.timing
            if timing is not None:
                timing.uop(instr, mem)
            if region is not None:
                reason = mach._hw_condition(region)
                if reason is not None:
                    return mach._fast_abort(fr, reason, nxt)
            return nxt

        return h_storelock

    if op in (MOp.FAA, MOp.CAS, MOp.LL, MOp.SC):
        fieldname = instr.fieldname

        def h_atomic(fr):
            mach = fr.machine
            mach.uops_executed += 1
            st = fr.stats
            st.uops_retired += 1
            region = fr.region
            if region is not None:
                region.uops += 1
                region.record.uops += 1
            regs = fr.regs
            obj = regs[a]
            if obj is None or not isinstance(obj, GuestObject):
                if obj is None:
                    if region is None:
                        raise NullPointerError("null dereference")
                    return mach._fast_exception(fr, mypc)
                raise VMError(
                    f"expected GuestObject, got {type(obj).__name__}"
                )
            heap = mach.heap
            slot = obj.field_index[fieldname]
            mem = obj.base + 16 + slot * 8
            if region is not None:
                region.read_lines.add(mem >> shift)
                buffered = region.store_buffer.get((id(obj), "f", slot))
                current = (buffered[2] if buffered is not None
                           else obj.slots[slot])
            else:
                current = obj.slots[slot]
            store = False
            new_value = None
            if op is MOp.FAA:
                new_value = wrap_int(current + regs[b])
                store = True
                regs[dst] = current
                st.faa_ops += 1
            elif op is MOp.CAS:
                ok = compare("eq", current, regs[b])
                regs[dst] = 1 if ok else 0
                st.cas_ops += 1
                if ok:
                    store = True
                    new_value = regs[c]
                else:
                    st.cas_failures += 1
            elif op is MOp.LL:
                regs[dst] = current
                heap.set_reservation(fr.tid, mem)
                st.ll_ops += 1
            else:  # SC
                ok = heap.check_reservation(fr.tid, mem)
                heap.clear_reservation(fr.tid)
                regs[dst] = 1 if ok else 0
                st.sc_ops += 1
                if ok:
                    store = True
                    new_value = regs[b]
                else:
                    st.sc_failures += 1
            if store:
                if region is not None:
                    region.store_buffer[(id(obj), "f", slot)] = (
                        obj, slot, new_value)
                    region.write_lines.add(mem >> shift)
                else:
                    obj.slots[slot] = new_value
                    if heap.reservations:
                        heap.kill_reservations(fr.tid, mem, shift)
                st.stores += 1
            timing = fr.timing
            if timing is not None:
                timing.uop(instr, mem)
            if region is not None:
                reason = mach._hw_condition(region)
                if reason is not None:
                    return mach._fast_abort(fr, reason, nxt)
            return nxt

        return h_atomic

    if op is MOp.LOADSPILL or op is MOp.STORESPILL:
        is_load = op is MOp.LOADSPILL
        offset = imm * 8

        def h_spill(fr):
            fr.machine.uops_executed += 1
            st = fr.stats
            st.uops_retired += 1
            region = fr.region
            if region is not None:
                region.uops += 1
                region.record.uops += 1
            if is_load:
                fr.regs[dst] = fr.spill[imm]
                st.loads += 1
            else:
                fr.spill[imm] = fr.regs[a]
                st.stores += 1
            timing = fr.timing
            if timing is not None:
                timing.uop(instr, fr.spill_base + offset)
            if region is not None:
                reason = fr.machine._hw_condition(region)
                if reason is not None:
                    return fr.machine._fast_abort(fr, reason, nxt)
            return nxt

        return h_spill

    if op is MOp.LOADG:

        def h_loadg(fr):
            fr.machine.uops_executed += 1
            st = fr.stats
            st.uops_retired += 1
            region = fr.region
            if region is not None:
                region.uops += 1
                region.record.uops += 1
            fr.regs[dst] = 0  # yield flag never set in samples
            if imm is not None:
                st.loads += 1
            timing = fr.timing
            if timing is not None:
                timing.uop(instr, imm)
            if region is not None:
                reason = fr.machine._hw_condition(region)
                if reason is not None:
                    return fr.machine._fast_abort(fr, reason, nxt)
            return nxt

        return h_loadg

    # -- allocation --------------------------------------------------------
    if op is MOp.NEWOBJ or op is MOp.NEWARR:
        cls = instr.cls
        is_obj = op is MOp.NEWOBJ

        def h_new(fr):
            mach = fr.machine
            mach.uops_executed += 1
            fr.stats.uops_retired += 1
            region = fr.region
            if region is not None:
                region.uops += 1
                region.record.uops += 1
            try:
                if is_obj:
                    layout = mach.program.field_layout(cls)
                    ref = mach.heap.new_object(cls, layout)
                else:
                    ref = mach.heap.new_array(fr.regs[a])
            except GuestError:
                if region is None:
                    raise
                return mach._fast_exception(fr, mypc)
            fr.regs[dst] = ref
            if region is not None:
                region.allocs.append(ref)
            timing = fr.timing
            if timing is not None:
                timing.uop(instr, None)
            if region is not None:
                reason = mach._hw_condition(region)
                if reason is not None:
                    return mach._fast_abort(fr, reason, nxt)
            return nxt

        return h_new

    # -- control -----------------------------------------------------------
    if op is MOp.BR:

        def h_br(fr):
            mach = fr.machine
            mach.uops_executed += 1
            st = fr.stats
            st.uops_retired += 1
            region = fr.region
            if region is not None:
                region.uops += 1
                region.record.uops += 1
            regs = fr.regs
            taken = machine_compare(
                cond, regs[a], regs[b] if b is not None else None)
            st.branches += 1
            timing = fr.timing
            if timing is not None:
                if not timing.branch(fr.code_base + mypc, taken):
                    st.mispredicts += 1
            if taken:
                if timing is not None:
                    timing.uop(instr, None)
                if region is not None:
                    reason = mach._hw_condition(region)
                    if reason is not None:
                        return mach._fast_abort(fr, reason, target)
                return target
            if timing is not None:
                timing.uop(instr, None)
            if region is not None:
                reason = mach._hw_condition(region)
                if reason is not None:
                    return mach._fast_abort(fr, reason, nxt)
            return nxt

        return h_br

    if op is MOp.JMP:

        def h_jmp(fr):
            fr.machine.uops_executed += 1
            fr.stats.uops_retired += 1
            region = fr.region
            if region is not None:
                region.uops += 1
                region.record.uops += 1
            timing = fr.timing
            if timing is not None:
                timing.uop(instr, None)
            # The slow path's jump `continue` skips the retirement check.
            return target

        return h_jmp

    if op is MOp.BR_TRAP:

        def h_brtrap(fr):
            mach = fr.machine
            mach.uops_executed += 1
            st = fr.stats
            st.uops_retired += 1
            region = fr.region
            if region is not None:
                region.uops += 1
                region.record.uops += 1
            regs = fr.regs
            failed = machine_compare(
                cond, regs[a], regs[b] if b is not None else None)
            st.branches += 1
            timing = fr.timing
            if timing is not None:
                if not timing.branch(fr.code_base + mypc, failed):
                    st.mispredicts += 1
            if failed:
                if region is None:
                    raise _trap_error(instr)
                # Hardware fault inside a region: abort without ticking
                # the faulting uop, exactly like the slow path's handler.
                return mach._fast_exception(fr, mypc)
            if timing is not None:
                timing.uop(instr, None)
            if region is not None:
                reason = mach._hw_condition(region)
                if reason is not None:
                    return mach._fast_abort(fr, reason, nxt)
            return nxt

        return h_brtrap

    if op is MOp.BR_ABORT:

        def h_brabort(fr):
            mach = fr.machine
            mach.uops_executed += 1
            st = fr.stats
            st.uops_retired += 1
            region = fr.region
            if region is not None:
                region.uops += 1
                region.record.uops += 1
            regs = fr.regs
            fired = machine_compare(
                cond, regs[a], regs[b] if b is not None else None)
            st.branches += 1
            timing = fr.timing
            if timing is not None:
                if not timing.branch(fr.code_base + mypc, fired):
                    st.mispredicts += 1
            if fired:
                if timing is not None:
                    timing.uop(instr, None)
                return target  # the abort stub; no retirement check
            if timing is not None:
                timing.uop(instr, None)
            if region is not None:
                reason = mach._hw_condition(region)
                if reason is not None:
                    return mach._fast_abort(fr, reason, nxt)
            return nxt

        return h_brabort

    # -- atomic regions ----------------------------------------------------
    if op is MOp.AREGION_BEGIN:
        rid = imm

        def h_begin(fr):
            mach = fr.machine
            mach.uops_executed += 1
            st = fr.stats
            st.uops_retired += 1
            if fr.region is not None:
                raise VMError("nested aregion_begin")
            if mach._pending_cc:
                code = mach._pending_cc.pop(fr.tid, None)
                if code is not None:
                    # setjmp-style delivery: branch to the software path.
                    mach.condition_code_register = code
                    st.setjmp_deliveries += 1
                    timing = fr.timing
                    if timing is not None:
                        timing.uop(instr, None)
                    return target
            mach.condition_code_register = 0
            if mach._fallback_holds:
                mach._release_fallback_lock(fr.tid)
            if rid in fr.compiled.disabled_regions:
                # Patched to permanent non-speculative fallback.
                st.regions_suppressed += 1
                timing = fr.timing
                if timing is not None:
                    timing.uop(instr, None)
                return target
            region = mach._begin_region(
                fr.compiled, instr, fr.regs, fr.spill, mypc, fr.tid)
            fr.region = region
            timing = fr.timing
            if timing is not None:
                timing.region_begin()
                timing.uop(instr, None)
            reason = mach._hw_condition(region)
            if reason is not None:
                return mach._fast_abort(fr, reason, nxt)
            return nxt

        return h_begin

    if op is MOp.AREGION_END:

        def h_end(fr):
            mach = fr.machine
            mach.uops_executed += 1
            fr.stats.uops_retired += 1
            region = fr.region
            if region is None:
                raise VMError("aregion_end outside a region")
            region.uops += 1
            region.record.uops += 1
            if mach._real_conflict(region):
                region.real_conflict = True
                timing = fr.timing
                if timing is not None:
                    timing.uop(instr, None)
                pc2 = mach._do_abort(
                    fr.compiled, region, "conflict", fr.code_base + mypc,
                    None, fr.regs, fr.spill,
                )
                fr.region = None
                return pc2
            if (mach._fallback_mode == "end"
                    and mach.fallback_lock.held_by_other(fr.tid)):
                # Sandboxed commit-instant validation of the fallback lock.
                region.real_conflict = True
                timing = fr.timing
                if timing is not None:
                    timing.uop(instr, None)
                pc2 = mach._do_abort(
                    fr.compiled, region, "conflict", fr.code_base + mypc,
                    None, fr.regs, fr.spill,
                )
                fr.region = None
                return pc2
            mach._commit(region)
            timing = fr.timing
            if timing is not None:
                timing.region_end()
                timing.uop(instr, None)
            fr.region = None
            return nxt

        return h_end

    if op is MOp.AREGION_ABORT:
        reason_const = instr.cls or "assert"
        abort_id = instr.abort_id

        def h_abort(fr):
            mach = fr.machine
            mach.uops_executed += 1
            fr.stats.uops_retired += 1
            region = fr.region
            if region is None:
                raise VMError("aregion_abort outside a region")
            region.uops += 1
            region.record.uops += 1
            timing = fr.timing
            if timing is not None:
                timing.uop(instr, None)
            pc2 = mach._do_abort(
                fr.compiled, region, reason_const, fr.code_base + mypc,
                abort_id, fr.regs, fr.spill,
            )
            fr.region = None
            return pc2

        return h_abort

    # -- calls and return --------------------------------------------------
    if op is MOp.CALLVM or op is MOp.VCALLVM:
        method_name = instr.method
        call_args = instr.args
        is_static = op is MOp.CALLVM

        def h_call(fr):
            mach = fr.machine
            mach.uops_executed += 1
            fr.stats.uops_retired += 1
            if fr.region is not None:
                fr.region.uops += 1
                fr.region.record.uops += 1
                raise VMError("call inside an atomic region")
            if mach.dispatcher is None:
                raise VMError("machine has no call dispatcher")
            regs = fr.regs
            spill = fr.spill
            values = [
                regs[r] if r >= 0 else spill[-r - 1] for r in call_args
            ]
            if is_static:
                callee = mach.program.resolve_static(method_name)
            else:
                receiver = values[0]
                if receiver is None:
                    raise NullPointerError("virtual call on null")
                callee = mach.program.resolve_virtual(
                    receiver.class_name, method_name
                )
            timing = fr.timing
            if timing is not None:
                timing.call_boundary()
            regs[dst] = mach.dispatcher.invoke(callee, values)
            timing = fr.timing
            if timing is not None:
                timing.uop(instr, None)
            return nxt

        return h_call

    if op is MOp.RET:

        def h_ret(fr):
            mach = fr.machine
            mach.uops_executed += 1
            fr.stats.uops_retired += 1
            region = fr.region
            if region is not None:
                region.uops += 1
                region.record.uops += 1
                raise VMError("return inside an atomic region")
            if mach._fallback_holds:
                mach._release_fallback_lock(fr.tid)
            timing = fr.timing
            if timing is not None:
                timing.uop(instr, None)
            fr.ret = fr.regs[a] if a is not None else None
            return -1

        return h_ret

    raise VMError(f"cannot pre-decode machine op {op}")  # pragma: no cover


#: ALU binary ops with their (exception-faithful) evaluation functions.
_FAST_ALU = {
    MOp.ADD: lambda x, y: wrap_int(x + y),
    MOp.SUB: lambda x, y: wrap_int(x - y),
    MOp.MUL: lambda x, y: wrap_int(x * y),
    MOp.DIV: guest_div,
    MOp.MOD: guest_mod,
    MOp.AND: lambda x, y: wrap_int(x & y),
    MOp.OR: lambda x, y: wrap_int(x | y),
    MOp.XOR: lambda x, y: wrap_int(x ^ y),
    MOp.SHL: lambda x, y: wrap_int(x << (y & 63)),
    MOp.SHR: lambda x, y: wrap_int(x >> (y & 63)),
}


def _trap_error(instr: MInstr) -> GuestError:
    """Materialize the guest error for a failed BR_TRAP safety check."""
    kind = instr.fieldname or "trap"
    if kind == "null":
        return NullPointerError("null check failed")
    if kind == "bounds":
        return BoundsError(-1, -1)
    if kind == "div0":
        return GuestArithmeticError("division by zero")
    return GuestError(kind)
