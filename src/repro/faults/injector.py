"""Runtime half of the fault subsystem: the machine-facing injector.

A :class:`FaultInjector` turns a frozen :class:`~repro.faults.plan.FaultPlan`
into the two hooks the machine consumes:

- :meth:`schedule_region` — called at every ``aregion_begin``; returns a
  :class:`RegionFaultSchedule` naming the region-relative faults (conflict /
  spurious assert / guest exception / capacity shrink) armed for that
  dynamic region entry;
- :meth:`take_interrupt` — called at every in-region hardware-condition
  check with the global retired-uop counter; an interrupt whose absolute
  threshold has passed *pends* until this check, so taken-branch paths that
  skip a retirement boundary can never silently swallow it (unlike the old
  ``uops % interval == 0`` test).

The injector is deterministic: the same plan against the same execution
produces the same fault sequence.  Seeded draws consume one ``Random``
stream in region-entry order, so retried regions re-draw (each retry is a
fresh dynamic entry — exactly how real conflicting hardware behaves).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Callable

from ..obs.tracer import NULL_TRACER
from .plan import FaultEvent, FaultPlan


@dataclass
class RegionFaultSchedule:
    """Faults armed for one dynamic region entry (region-relative uops)."""

    conflict_at: int | None = None
    assert_at: int | None = None
    exception_at: int | None = None
    #: shrunken best-effort capacity (min'd with the config's line limit).
    line_limit: int | None = None
    #: shrunken speculative store buffer (min'd with the config's
    #: ``spec_store_buffer_entries``; effective under every ``htm_mode``).
    store_limit: int | None = None

    def merge(self, kind: str, offset: int, line_limit: int | None,
              store_limit: int | None = None) -> None:
        if kind == "conflict":
            self.conflict_at = _min_opt(self.conflict_at, offset)
        elif kind == "assert":
            self.assert_at = _min_opt(self.assert_at, offset)
        elif kind == "exception":
            self.exception_at = _min_opt(self.exception_at, offset)
        elif kind == "overflow":
            limit = line_limit if line_limit is not None else 0
            self.line_limit = _min_opt(self.line_limit, limit)
        elif kind == "capacity":
            limit = store_limit if store_limit is not None else 0
            self.store_limit = _min_opt(self.store_limit, limit)


def _min_opt(current: int | None, new: int) -> int:
    return new if current is None else min(current, new)


class FaultInjector:
    """Stateful, deterministic fault source for one machine."""

    def __init__(
        self,
        plan: FaultPlan | None = None,
        conflict_callback: Callable | None = None,
    ) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        #: legacy hook: callable(RegionExecution) -> conflict uop offset.
        self.conflict_callback = conflict_callback
        #: observability: the owning machine points these at its tracer and
        #: retired-uop counter, so armed faults and delivered interrupts
        #: appear on the same timeline as the regions they perturb.
        self.tracer = NULL_TRACER
        self.clock = lambda: 0
        self.regions_seen = 0
        #: kind -> number of times a fault of that kind was armed.
        self.scheduled = Counter()
        self.interrupts_delivered = 0
        self._rng: random.Random | None = None
        self._indexed_events: dict[int, list[FaultEvent]] = {}
        self._storm_events: list[FaultEvent] = []
        self._interrupt_thresholds: list[int] = []
        self._next_interrupt_at: int | None = None
        self.reset()

    @classmethod
    def from_legacy(
        cls,
        conflict_injector: Callable | None,
        interrupt_interval: int | None,
    ) -> "FaultInjector":
        """Back-compat shim for the old ``Machine`` keyword arguments."""
        plan = (FaultPlan.periodic_interrupts(interrupt_interval)
                if interrupt_interval is not None else FaultPlan())
        return cls(plan, conflict_callback=conflict_injector)

    # -- lifecycle -----------------------------------------------------------
    def reset(self) -> None:
        """Rewind to the start of the schedule (fresh rng, fresh events)."""
        plan = self.plan
        self.regions_seen = 0
        self.scheduled = Counter()
        self.interrupts_delivered = 0
        self._rng = random.Random(plan.seed) if plan.seed is not None else None
        self._indexed_events = {}
        self._storm_events = []
        self._interrupt_thresholds = []
        for event in plan.events:
            if event.kind == "interrupt":
                self._interrupt_thresholds.append(event.at_uop)
            elif event.region_index is None:
                self._storm_events.append(event)
            else:
                self._indexed_events.setdefault(
                    event.region_index, []
                ).append(event)
        self._interrupt_thresholds.sort(reverse=True)  # pop() smallest last
        self._next_interrupt_at = None
        if plan.interrupt_interval is not None:
            self._next_interrupt_at = plan.interrupt_interval
        elif plan.interrupt_gap is not None:
            self._next_interrupt_at = self._rng.randint(*plan.interrupt_gap)

    # -- machine hooks -------------------------------------------------------
    def schedule_region(self, record) -> RegionFaultSchedule:
        """Arm the faults for the next dynamic region entry."""
        index = self.regions_seen
        self.regions_seen += 1
        sched = RegionFaultSchedule()
        for event in self._storm_events:
            sched.merge(event.kind, event.offset, event.line_limit,
                        event.store_limit)
            self.scheduled[event.kind] += 1
        for event in self._indexed_events.pop(index, ()):
            sched.merge(event.kind, event.offset, event.line_limit,
                        event.store_limit)
            self.scheduled[event.kind] += 1
        if self._rng is not None and self.plan.region_rates:
            lo, hi = self.plan.offset_range
            for kind, rate in self.plan.region_rates:
                if self._rng.random() < rate:
                    offset = self._rng.randint(lo, hi)
                    sched.merge(kind, offset, self.plan.capacity_lines,
                                self.plan.capacity_stores)
                    self.scheduled[kind] += 1
        if self.conflict_callback is not None:
            offset = self.conflict_callback(record)
            if offset is not None:
                sched.conflict_at = _min_opt(sched.conflict_at, offset)
                self.scheduled["conflict"] += 1
        tracer = self.tracer
        if tracer.enabled:
            ts = self.clock()
            if sched.conflict_at is not None:
                tracer.fault_armed(ts, 0, "conflict", index,
                                   offset=sched.conflict_at)
            if sched.assert_at is not None:
                tracer.fault_armed(ts, 0, "assert", index,
                                   offset=sched.assert_at)
            if sched.exception_at is not None:
                tracer.fault_armed(ts, 0, "exception", index,
                                   offset=sched.exception_at)
            if sched.line_limit is not None:
                tracer.fault_armed(ts, 0, "overflow", index,
                                   line_limit=sched.line_limit)
            if sched.store_limit is not None:
                tracer.fault_armed(ts, 0, "capacity", index,
                                   store_limit=sched.store_limit)
        return sched

    def take_interrupt(self, uops_executed: int) -> bool:
        """True when an interrupt is pending at this check.

        Absolute thresholds: the interrupt fires at the first check at or
        after its threshold.  Periodic/seeded interrupts re-arm relative to
        the *current* uop counter so a long stretch outside regions yields
        one pending interrupt, not a storm of stale ones.
        """
        if (self._interrupt_thresholds
                and uops_executed >= self._interrupt_thresholds[-1]):
            self._interrupt_thresholds.pop()
            self.interrupts_delivered += 1
            if self.tracer.enabled:
                self.tracer.interrupt(uops_executed)
            return True
        if (self._next_interrupt_at is not None
                and uops_executed >= self._next_interrupt_at):
            if self.plan.interrupt_interval is not None:
                self._next_interrupt_at = (
                    uops_executed + self.plan.interrupt_interval
                )
            else:
                self._next_interrupt_at = (
                    uops_executed + self._rng.randint(*self.plan.interrupt_gap)
                )
            self.interrupts_delivered += 1
            if self.tracer.enabled:
                self.tracer.interrupt(uops_executed)
            return True
        return False
