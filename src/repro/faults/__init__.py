"""Deterministic fault injection for atomic regions.

``FaultPlan`` (frozen data: what to inject, when) + ``FaultInjector``
(runtime: arms region-relative faults at every ``aregion_begin`` and delivers
pending interrupts at hardware-condition checks).  The machine's
forward-progress machinery — conflict retry budgets and permanent
non-speculative fallback — guarantees that any plan, including perpetual
abort storms (``FaultPlan.storm``), terminates.
"""

from .injector import FaultInjector, RegionFaultSchedule
from .plan import FAULT_KINDS, REGION_KINDS, FaultEvent, FaultPlan, derive_seed

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "REGION_KINDS",
    "RegionFaultSchedule",
    "derive_seed",
]
