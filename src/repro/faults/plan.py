"""Deterministic fault schedules for the chaos/robustness harness.

The paper's reliability argument (§3, §5) is that *any* abort condition —
failed assert, footprint overflow, interrupt, coherence conflict, guest
fault — rolls the atomic region back totally and lands on the
non-speculative recovery path with correct state.  A :class:`FaultPlan`
describes, purely as data, *which* of those conditions to inject and
*when*: at precise retired-uop offsets (absolute for interrupts,
region-relative for the rest), on specific dynamic region entries, or via
a seeded pseudo-random schedule.  Plans are frozen and hashable so the
experiment cache can key on them, and the same plan always reproduces the
same fault sequence for a given execution.

The runtime half lives in :mod:`repro.faults.injector`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


def derive_seed(seed: int, stream: str) -> int:
    """Derive an independent sub-seed for one named consumer of a chaos seed.

    One experiment seed drives several pseudo-random streams (the fault
    injector's region draws, the scheduler's quantum/pick draws); feeding
    ``random.Random`` the same integer in each would correlate them.  Hashing
    the (stream, seed) pair gives every consumer its own reproducible stream
    while keeping a single user-facing seed.  Stable across processes and
    Python versions (unlike ``hash``), so recorded schedules replay anywhere.
    """
    digest = hashlib.sha256(f"{stream}:{seed}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")

#: Every injectable abort reason, matching the machine's abort-reason
#: register values ("overflow" is line-set capacity pressure against the
#: idealized substrate's bound; "capacity" is the best-effort HTM bound —
#: a shrunken speculative store buffer).
FAULT_KINDS = (
    "interrupt", "conflict", "overflow", "assert", "exception", "capacity",
)

#: Kinds scheduled relative to a region entry (everything but interrupts).
REGION_KINDS = ("conflict", "overflow", "assert", "exception", "capacity")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    - ``kind="interrupt"`` events use ``at_uop``: an *absolute* retired-uop
      threshold; the interrupt pends until the next in-region check, so it
      is never silently missed.
    - Region kinds use ``region_index`` (the 0-based dynamic region-entry
      number, or ``None`` for *every* region — an abort storm) plus
      ``offset`` (region-relative retired uops before the fault fires).
    - ``kind="overflow"`` uses ``line_limit`` to shrink the best-effort
      capacity for the targeted region (capacity pressure), forcing the
      existing overflow abort path.
    - ``kind="capacity"`` uses ``store_limit`` to shrink the speculative
      store buffer for the targeted region, forcing the best-effort HTM
      "capacity" abort path regardless of the configured ``htm_mode``.
    """

    kind: str
    at_uop: int | None = None
    region_index: int | None = None
    offset: int = 1
    line_limit: int | None = None
    store_limit: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "interrupt" and self.at_uop is None:
            raise ValueError("interrupt events need an absolute at_uop")
        if self.kind != "interrupt" and self.at_uop is not None:
            raise ValueError(f"{self.kind} events are region-relative")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, deterministic fault schedule.

    Three composable layers (all optional):

    - ``events``: explicit one-shot (or every-region) :class:`FaultEvent`s;
    - ``interrupt_interval``: periodic interrupts, re-armed from the uop
      counter at each delivery (the replacement for the old modulo test);
    - ``seed`` + ``region_rates`` / ``interrupt_gap``: a seeded random
      schedule — each region entry draws independently per kind, and
      interrupt inter-arrival gaps are drawn from ``interrupt_gap``.
    """

    events: tuple[FaultEvent, ...] = ()
    interrupt_interval: int | None = None
    seed: int | None = None
    #: ((kind, probability-per-region-entry), ...), sorted for hashability.
    region_rates: tuple[tuple[str, float], ...] = ()
    #: seeded interrupt inter-arrival range in uops (inclusive), or None.
    interrupt_gap: tuple[int, int] | None = None
    #: region-relative uop offset range for seeded region faults.
    offset_range: tuple[int, int] = (1, 48)
    #: line limit imposed by seeded capacity-pressure faults.
    capacity_lines: int = 16
    #: store-buffer limit imposed by seeded "capacity" faults (0 = the
    #: first buffered store already overflows).
    capacity_stores: int = 0

    def __post_init__(self) -> None:
        for kind, rate in self.region_rates:
            if kind not in REGION_KINDS:
                raise ValueError(f"{kind!r} is not a region-relative kind")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {kind!r} out of [0, 1]: {rate}")
        if (self.seed is None
                and (self.region_rates or self.interrupt_gap is not None)):
            raise ValueError("seeded schedules need a seed")

    # -- constructors -------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """An empty plan: no faults (useful as a neutral default)."""
        return cls()

    @classmethod
    def periodic_interrupts(cls, interval: int) -> "FaultPlan":
        """Interrupt every ``interval`` retired uops (absolute threshold)."""
        if interval <= 0:
            raise ValueError("interrupt interval must be positive")
        return cls(interrupt_interval=interval)

    @classmethod
    def single(cls, kind: str, *, region_index: int = 0, offset: int = 1,
               at_uop: int | None = None, line_limit: int | None = None,
               store_limit: int | None = None) -> "FaultPlan":
        """One fault of ``kind`` on one region entry (or uop threshold)."""
        if kind == "interrupt":
            return cls(events=(FaultEvent(kind, at_uop=at_uop),))
        return cls(events=(FaultEvent(
            kind, region_index=region_index, offset=offset,
            line_limit=line_limit, store_limit=store_limit,
        ),))

    @classmethod
    def storm(cls, kind: str = "conflict", offset: int = 2,
              line_limit: int | None = None,
              store_limit: int | None = None) -> "FaultPlan":
        """A perpetual abort storm: ``kind`` fires in *every* region entry.

        This is the adversarial schedule the forward-progress machinery
        must terminate: without a retry budget and permanent fallback it
        would live-lock a conflict-retrying machine.
        """
        if kind == "interrupt":
            raise ValueError("storms are region-relative; use a tiny "
                             "interrupt_interval instead")
        if kind == "overflow" and line_limit is None:
            line_limit = 0
        if kind == "capacity" and store_limit is None:
            store_limit = 0
        return cls(events=(FaultEvent(
            kind, region_index=None, offset=offset, line_limit=line_limit,
            store_limit=store_limit,
        ),))

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        conflict_rate: float = 0.05,
        assert_rate: float = 0.03,
        exception_rate: float = 0.02,
        overflow_rate: float = 0.01,
        capacity_rate: float = 0.0,
        interrupt_gap: tuple[int, int] | None = (4_000, 12_000),
        offset_range: tuple[int, int] = (1, 48),
        capacity_lines: int = 2,
        capacity_stores: int = 0,
    ) -> "FaultPlan":
        """The chaos-mode default: every fault kind, seeded and repeatable.

        ``capacity_rate`` defaults to 0.0 so pre-existing seeded streams
        stay byte-identical (zero-rate kinds are dropped from the tuple
        and never draw from the rng); HTM-realism sweeps opt in.
        """
        rates = tuple(sorted(
            (kind, rate) for kind, rate in (
                ("conflict", conflict_rate),
                ("assert", assert_rate),
                ("exception", exception_rate),
                ("overflow", overflow_rate),
                ("capacity", capacity_rate),
            ) if rate > 0.0
        ))
        return cls(
            seed=seed,
            region_rates=rates,
            interrupt_gap=interrupt_gap,
            offset_range=offset_range,
            capacity_lines=capacity_lines,
            capacity_stores=capacity_stores,
        )

    # -- properties ---------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return (not self.events
                and self.interrupt_interval is None
                and self.seed is None)

    def describe(self) -> str:
        parts = []
        if self.events:
            parts.append(f"{len(self.events)} event(s)")
        if self.interrupt_interval is not None:
            parts.append(f"interrupts every {self.interrupt_interval} uops")
        if self.seed is not None:
            kinds = ",".join(k for k, _ in self.region_rates) or "none"
            parts.append(f"seeded(seed={self.seed}, kinds={kinds})")
        return "; ".join(parts) if parts else "no faults"
