"""Trace exporters: Chrome trace-event JSON (Perfetto-loadable).

The Chrome trace-event format is the lingua franca of timeline viewers
(``chrome://tracing``, https://ui.perfetto.dev): a ``traceEvents`` list of
dicts, each with a ``name``, a phase ``ph`` (``"B"`` begin / ``"E"`` end /
``"i"`` instant), a microsecond timestamp ``ts``, and ``pid``/``tid``
identifiers.  We map the deterministic uop/step timestamps directly onto
``ts``: one retired uop = one "microsecond", so durations in the viewer
read as retired-uop counts.

Region lifecycles become ``B``/``E`` slice pairs (the ``E`` carries the
outcome — ``commit`` or the abort reason — in ``args``); everything else
(context switches, fault arming, tier transitions, retries/fallbacks) is
an instant event on its thread's track.  :func:`validate_chrome_trace` is
the schema contract the exporter tests (and chaos-failure dumps) check.
"""

from __future__ import annotations

import json
import os

from .tracer import EVENT_KINDS, TraceEvent

#: phases for non-region event kinds (all instants on the thread track).
_INSTANT_SCOPE = "t"

#: fields every exported event must carry.
REQUIRED_FIELDS = ("name", "ph", "ts", "pid", "tid", "cat", "args")

#: phases the exporter emits (and the validator accepts).
ALLOWED_PHASES = ("B", "E", "i")


def _region_name(event: TraceEvent) -> str:
    return f"{event.arg('method')}#r{event.arg('region')}"


def to_chrome_trace(events, pid: int = 0, truncated: bool = False) -> dict:
    """Render a list of :class:`TraceEvent` as a Chrome trace document."""
    trace_events = []
    for event in events:
        args = dict(event.args)
        entry = {
            "pid": pid,
            "tid": event.tid,
            "ts": event.ts,
            "cat": event.kind,
            "args": args,
        }
        if event.kind == "region_enter":
            entry["ph"] = "B"
            entry["name"] = _region_name(event)
        elif event.kind == "region_commit":
            entry["ph"] = "E"
            entry["name"] = _region_name(event)
            entry["args"]["outcome"] = "commit"
        elif event.kind == "region_abort":
            entry["ph"] = "E"
            entry["name"] = _region_name(event)
            entry["args"]["outcome"] = "abort"
        else:
            entry["ph"] = "i"
            entry["s"] = _INSTANT_SCOPE
            entry["name"] = event.kind
        # Chrome requires JSON-safe arg values; tuples become lists there
        # anyway, so normalize eagerly for a stable on-disk form.
        entry["args"] = {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in entry["args"].items()
        }
        trace_events.append(entry)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "clock": "retired-uops",
            "truncated": bool(truncated),
        },
    }


def dump_chrome_trace(events, path: str, pid: int = 0,
                      truncated: bool = False) -> str:
    """Write the Chrome trace for ``events`` to ``path``; returns ``path``."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    document = to_chrome_trace(events, pid=pid, truncated=truncated)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return path


def validate_chrome_trace(document: dict) -> None:
    """Raise ``ValueError`` unless ``document`` satisfies the export schema.

    Checks structure (required fields, types, known phases/categories) and
    — for untruncated traces — that ``B``/``E`` slice events balance per
    thread track, so every region enter has its commit/abort pair.
    """
    if not isinstance(document, dict):
        raise ValueError("trace document must be a dict")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document needs a traceEvents list")
    depth: dict[tuple[int, int], int] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not a dict")
        for fieldname in REQUIRED_FIELDS:
            if fieldname not in event:
                raise ValueError(
                    f"traceEvents[{index}] missing {fieldname!r}: {event}"
                )
        if event["ph"] not in ALLOWED_PHASES:
            raise ValueError(
                f"traceEvents[{index}] has unknown phase {event['ph']!r}"
            )
        if not isinstance(event["ts"], int) or event["ts"] < 0:
            raise ValueError(
                f"traceEvents[{index}] ts must be a non-negative int"
            )
        if not isinstance(event["pid"], int) or not isinstance(event["tid"], int):
            raise ValueError(f"traceEvents[{index}] pid/tid must be ints")
        if event["cat"] not in EVENT_KINDS:
            raise ValueError(
                f"traceEvents[{index}] has unknown category {event['cat']!r}"
            )
        if not isinstance(event["args"], dict):
            raise ValueError(f"traceEvents[{index}] args must be a dict")
        track = (event["pid"], event["tid"])
        if event["ph"] == "B":
            depth[track] = depth.get(track, 0) + 1
        elif event["ph"] == "E":
            depth[track] = depth.get(track, 0) - 1
    truncated = bool(document.get("otherData", {}).get("truncated"))
    if not truncated:
        for track, balance in depth.items():
            if balance != 0:
                raise ValueError(
                    f"unbalanced B/E slices on pid/tid {track}: {balance:+d}"
                )
