"""Observability: region-lifecycle tracing, metrics, and trace exporters.

Three pieces (DESIGN.md §8):

- :class:`Tracer` / :data:`NULL_TRACER` — typed events (region
  enter/commit/abort, context switches, tier transitions, fault
  injections) in a bounded ring buffer, timestamped by deterministic
  hardware counters so the same seed reproduces the same stream;
- :class:`Metrics` — a counter/histogram registry that projects (and is
  tested equal to) :class:`~repro.hw.stats.ExecStats` aggregation;
- :func:`to_chrome_trace` / :func:`dump_chrome_trace` — Chrome
  trace-event JSON, loadable in Perfetto, validated by
  :func:`validate_chrome_trace`.

The overhead contract: every emission site is guarded by one
``tracer.enabled`` attribute check, and tracing on/off is observationally
identical (``tests/test_differential.py``).
"""

from .export import (
    ALLOWED_PHASES,
    REQUIRED_FIELDS,
    dump_chrome_trace,
    to_chrome_trace,
    validate_chrome_trace,
)
from .metrics import DEFAULT_BOUNDS, Histogram, Metrics
from .tracer import EVENT_KINDS, NULL_TRACER, NullTracer, TraceEvent, Tracer

__all__ = [
    "ALLOWED_PHASES",
    "DEFAULT_BOUNDS",
    "EVENT_KINDS",
    "Histogram",
    "Metrics",
    "NULL_TRACER",
    "NullTracer",
    "REQUIRED_FIELDS",
    "TraceEvent",
    "Tracer",
    "dump_chrome_trace",
    "to_chrome_trace",
    "validate_chrome_trace",
]
