"""Metrics registry: named counters and histograms over one execution.

:class:`~repro.hw.stats.ExecStats` stays the machine-facing hot-path
aggregator (plain attribute increments; every figure keeps reading it).
:class:`Metrics` is the observability projection of the same data — a
uniform name → counter / name → histogram registry that exporters and
dashboards can walk without knowing the stats dataclass — and
:meth:`Metrics.from_stats` is the bridge.  ``tests/test_obs.py`` pins the
subsumption contract: ``Metrics.from_stats(stats).summary()`` is equal to
``stats.summary()`` for any execution, so nothing the figures report can
drift between the two views.
"""

from __future__ import annotations

import bisect
from collections import Counter


class Histogram:
    """A bucketed distribution that also keeps the raw observations.

    The raw list is what :class:`~repro.hw.stats.ExecStats` keeps for
    region sizes/footprints (its quantiles are exact, and region counts per
    run are small); the bucket counts give exporters a fixed-size view.
    """

    __slots__ = ("bounds", "bucket_counts", "values")

    def __init__(self, bounds: tuple[int, ...]) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted: {bounds}")
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.values: list = []

    def observe(self, value) -> None:
        self.values.append(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self):
        return sum(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            return 0.0
        return self.total / len(self.values)

    def quantile(self, q: float):
        """Exact quantile, same convention as ``ExecStats.region_line_quantile``."""
        if not self.values:
            return 0
        ordered = sorted(self.values)
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "buckets": {
                f"le_{bound}": count
                for bound, count in zip(self.bounds, self.bucket_counts)
            } | {"inf": self.bucket_counts[-1]},
        }


#: default bucket bounds for region-size / footprint histograms (uops and
#: cache lines share the small-heavy shape of §6.2's distributions).
DEFAULT_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


class Metrics:
    """Name-addressed counters and histograms."""

    def __init__(self) -> None:
        self.counters: Counter = Counter()
        self.histograms: dict[str, Histogram] = {}

    # -- recording ---------------------------------------------------------
    def inc(self, name: str, n=1) -> None:
        self.counters[name] += n

    def set(self, name: str, value) -> None:
        self.counters[name] = value

    def observe(self, name: str, value,
                bounds: tuple[int, ...] = DEFAULT_BOUNDS) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(bounds)
        histogram.observe(value)

    # -- reading -----------------------------------------------------------
    def counter(self, name: str):
        return self.counters.get(name, 0)

    def histogram(self, name: str) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(DEFAULT_BOUNDS)
        return histogram

    def _ratio(self, num: str, den: str) -> float:
        d = self.counters.get(den, 0)
        return self.counters.get(num, 0) / d if d else 0.0

    def merge(self, other: "Metrics") -> None:
        """Accumulate another registry into this one (counters add,
        histogram observations replay).  The sweep supervisor emits one
        registry per supervised sweep; callers aggregating a session of
        sweeps merge them here."""
        for name, value in other.counters.items():
            self.counters[name] += value
        for name, histogram in other.histograms.items():
            for value in histogram.values:
                self.observe(name, value, histogram.bounds)

    # -- the ExecStats bridge ----------------------------------------------
    @classmethod
    def from_stats(cls, stats) -> "Metrics":
        """Project an :class:`~repro.hw.stats.ExecStats` into the registry."""
        metrics = cls()
        counters = metrics.counters
        for name in (
            "uops_retired", "uops_in_regions", "interpreter_bytecodes",
            "cycles", "regions_entered", "regions_committed",
            "regions_aborted", "conflict_retries", "backoff_cycles",
            "regions_suppressed", "real_conflict_aborts",
            "injected_conflict_aborts", "contended_acquisitions",
            "context_switches", "loads", "stores", "branches", "mispredicts",
            "monitor_ops", "sle_elisions", "capacity_aborts",
            "fallback_lock_acquisitions", "fallback_lock_waits",
            "setjmp_deliveries", "faa_ops", "cas_ops", "cas_failures",
            "ll_ops", "sc_ops", "sc_failures",
        ):
            counters[name] = getattr(stats, name)
        counters["unique_regions"] = len(stats.unique_regions)
        counters["region_fallbacks"] = sum(stats.region_fallbacks.values())
        counters["threads"] = max(len(stats.uops_by_thread), 1)
        for reason, count in stats.abort_reasons.items():
            counters[f"aborts.reason.{reason}"] = count
        for tid, uops in stats.uops_by_thread.items():
            counters[f"uops.thread.{tid}"] = uops
        for size in stats.region_sizes:
            metrics.observe("region.size_uops", size)
        for lines in stats.region_lines:
            metrics.observe("region.footprint_lines", lines)
        return metrics

    # -- derived metrics (mirror the ExecStats properties) -------------------
    @property
    def coverage(self) -> float:
        return self._ratio("uops_in_regions", "uops_retired")

    @property
    def abort_rate(self) -> float:
        return self._ratio("regions_aborted", "regions_entered")

    @property
    def aborts_per_kuop(self) -> float:
        return 1000.0 * self._ratio("regions_aborted", "uops_retired")

    def summary(self) -> dict:
        """The same dict as ``ExecStats.summary()`` (the subsumption contract)."""
        return {
            "uops": self.counter("uops_retired"),
            "cycles": self.counter("cycles"),
            "coverage": round(self.coverage, 4),
            "regions": self.counter("regions_entered"),
            "unique_regions": self.counter("unique_regions"),
            "mean_region_size": round(
                self.histogram("region.size_uops").mean, 1),
            "abort_rate": round(self.abort_rate, 5),
            "aborts_per_kuop": round(self.aborts_per_kuop, 5),
            "mispredict_rate": round(self._ratio("mispredicts", "branches"), 5),
            "conflict_retries": self.counter("conflict_retries"),
            "region_fallbacks": self.counter("region_fallbacks"),
            "regions_suppressed": self.counter("regions_suppressed"),
            "real_conflict_aborts": self.counter("real_conflict_aborts"),
            "injected_conflict_aborts": self.counter("injected_conflict_aborts"),
            "contended_acquisitions": self.counter("contended_acquisitions"),
            "context_switches": self.counter("context_switches"),
            "threads": self.counter("threads"),
            "capacity_aborts": self.counter("capacity_aborts"),
            "fallback_lock_acquisitions": self.counter(
                "fallback_lock_acquisitions"),
            "fallback_lock_waits": self.counter("fallback_lock_waits"),
            "setjmp_deliveries": self.counter("setjmp_deliveries"),
            "faa_ops": self.counter("faa_ops"),
            "cas_ops": self.counter("cas_ops"),
            "cas_failures": self.counter("cas_failures"),
            "ll_ops": self.counter("ll_ops"),
            "sc_ops": self.counter("sc_ops"),
            "sc_failures": self.counter("sc_failures"),
        }

    def snapshot(self) -> dict:
        """Full registry dump: every counter and histogram by name."""
        return {
            "counters": dict(self.counters),
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self.histograms.items())
            },
        }
