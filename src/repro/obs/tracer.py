"""Structured region-lifecycle tracing.

Speculation bugs are interleaving/ordering bugs: what matters is *when* a
region aborted relative to scheduler switches, fault injections, and tier
transitions.  The :class:`Tracer` records exactly that — a bounded ring of
typed :class:`TraceEvent`\\ s whose timestamps are deterministic hardware
counters (retired uops / scheduler steps), never wall-clock time, so the
same seed always yields the same byte-for-byte event stream and a failing
chaos schedule can be diagnosed offline from its dump.

Overhead contract: tracing must never perturb the reproduction.

- Every emission site guards with ``if tracer.enabled:`` — the disabled
  path costs one attribute check and nothing else (``NULL_TRACER`` is the
  shared always-disabled instance every component defaults to).
- Events are append-only records of state the machine already computed;
  no emission reads the PRNGs, the heap, or any counter that feeds back
  into execution, so enabling tracing is observationally invisible
  (enforced end-to-end by ``tests/test_differential.py``).
- The ring is bounded (``capacity`` events, oldest dropped first) and
  flags truncation rather than growing without bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

#: The event taxonomy (DESIGN.md §8).  ``args`` keys per kind:
#:
#: - ``region_enter``    — method, region, pc
#: - ``region_commit``   — method, region, uops, lines_read, lines_written
#: - ``region_abort``    — method, region, reason, abort_pc, uops,
#:                         lines_read, lines_written
#: - ``region_retry``    — method, region, attempt, backoff_cycles
#: - ``region_fallback`` — method, region (patched to non-speculative code)
#: - ``region_suppressed`` — method, region (entry skipped: already patched)
#: - ``region_capacity`` — method, region, mode, used, limit (a best-effort
#:                         HTM capacity abort: which bound tripped, and how)
#: - ``fallback_lock``   — op ("acquire"/"release"/"wait"), depth (the
#:                         hybrid fallback lock's escalation traffic)
#: - ``ctx_switch``      — from_tid (``-1`` for the initial dispatch)
#: - ``tier_compile``    — method, blocked_asserts
#: - ``adaptive_recompile`` — method, blocked_pcs, rate
#: - ``fault_armed``     — fault (+ offset / line_limit / store_limit),
#:                         region_index
#: - ``interrupt``       — delivered pending injected interrupt
#:
#: Host sweep-supervisor lifecycle (``tid`` is the cell index, ``ts`` the
#: supervisor's own deterministic event sequence number):
#:
#: - ``cell_retry``      — key, attempt, backoff_s, failure (the failure
#:                         class being retried: exception/timeout/worker_lost)
#: - ``cell_timeout``    — key, timeout_s (cell exceeded its wall budget)
#: - ``pool_rebuild``    — rebuilds, reason (worker pool torn down/rebuilt)
#: - ``quarantine``      — key, attempts, failure (cell exhausted its budget)
#: - ``degrade_serial``  — rebuilds (pool gave up; remaining cells serial)
#:
#: Sweep-server lifecycle (``tid`` is the client id, ``ts`` the server's
#: deterministic event sequence number):
#:
#: - ``request_accepted`` — request, cells (one validated submit)
#: - ``cell_dedup``      — key, waiters (an in-flight cell gained a tenant)
#: - ``cell_served``     — key, source (hot/disk/cold/failed), waiters
#: - ``client_evicted``  — reason (a slow consumer lost its connection)
EVENT_KINDS = (
    "region_enter",
    "region_commit",
    "region_abort",
    "region_retry",
    "region_fallback",
    "region_suppressed",
    "region_capacity",
    "fallback_lock",
    "ctx_switch",
    "tier_compile",
    "adaptive_recompile",
    "fault_armed",
    "interrupt",
    "cell_retry",
    "cell_timeout",
    "pool_rebuild",
    "quarantine",
    "degrade_serial",
    "request_accepted",
    "cell_dedup",
    "cell_served",
    "client_evicted",
)


@dataclass(frozen=True)
class TraceEvent:
    """One typed trace event.

    ``ts`` is a deterministic logical timestamp (the machine's retired-uop
    counter, or the scheduler's global step counter for ``ctx_switch``);
    ``args`` is a sorted tuple of ``(key, value)`` pairs so events are
    hashable and two streams compare bit-for-bit with ``==``.
    """

    ts: int
    kind: str
    tid: int
    args: tuple = ()

    def arg(self, key: str, default=None):
        for k, v in self.args:
            if k == key:
                return v
        return default

    def describe(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.args)
        return f"@{self.ts} t{self.tid} {self.kind} {detail}".rstrip()


class _TracerAPI:
    """Shared typed-emission surface; subclasses define :meth:`emit`."""

    enabled = False

    def emit(self, kind: str, ts: int, tid: int = 0, **args) -> None:
        raise NotImplementedError  # pragma: no cover - abstract

    # -- region lifecycle --------------------------------------------------
    def region_enter(self, ts, tid, method, region, pc) -> None:
        self.emit("region_enter", ts, tid, method=method, region=region, pc=pc)

    def region_commit(self, ts, tid, method, region, uops,
                      lines_read, lines_written) -> None:
        self.emit("region_commit", ts, tid, method=method, region=region,
                  uops=uops, lines_read=lines_read,
                  lines_written=lines_written)

    def region_abort(self, ts, tid, method, region, reason, abort_pc, uops,
                     lines_read, lines_written) -> None:
        self.emit("region_abort", ts, tid, method=method, region=region,
                  reason=reason, abort_pc=abort_pc, uops=uops,
                  lines_read=lines_read, lines_written=lines_written)

    def region_retry(self, ts, tid, method, region, attempt,
                     backoff_cycles) -> None:
        self.emit("region_retry", ts, tid, method=method, region=region,
                  attempt=attempt, backoff_cycles=backoff_cycles)

    def region_fallback(self, ts, tid, method, region) -> None:
        self.emit("region_fallback", ts, tid, method=method, region=region)

    def region_suppressed(self, ts, tid, method, region) -> None:
        self.emit("region_suppressed", ts, tid, method=method, region=region)

    def region_capacity(self, ts, tid, method, region, mode, used,
                        limit) -> None:
        self.emit("region_capacity", ts, tid, method=method, region=region,
                  mode=mode, used=used, limit=limit)

    def fallback_lock(self, ts, tid, op, depth) -> None:
        self.emit("fallback_lock", ts, tid, op=op, depth=depth)

    # -- scheduler / tiers / faults ---------------------------------------
    def ctx_switch(self, ts, tid, from_tid) -> None:
        self.emit("ctx_switch", ts, tid, from_tid=from_tid)

    def tier_compile(self, ts, method, blocked_asserts) -> None:
        self.emit("tier_compile", ts, method=method,
                  blocked_asserts=blocked_asserts)

    def adaptive_recompile(self, ts, method, blocked_pcs, rate) -> None:
        self.emit("adaptive_recompile", ts, method=method,
                  blocked_pcs=blocked_pcs, rate=rate)

    def fault_armed(self, ts, tid, kind, region_index, **detail) -> None:
        self.emit("fault_armed", ts, tid, fault=kind,
                  region_index=region_index, **detail)

    def interrupt(self, ts) -> None:
        self.emit("interrupt", ts)

    # -- host sweep supervisor (tid = cell index) --------------------------
    def cell_retry(self, ts, tid, key, attempt, backoff_s, failure) -> None:
        self.emit("cell_retry", ts, tid, key=key, attempt=attempt,
                  backoff_s=backoff_s, failure=failure)

    def cell_timeout(self, ts, tid, key, timeout_s) -> None:
        self.emit("cell_timeout", ts, tid, key=key, timeout_s=timeout_s)

    def pool_rebuild(self, ts, rebuilds, reason) -> None:
        self.emit("pool_rebuild", ts, rebuilds=rebuilds, reason=reason)

    def quarantine(self, ts, tid, key, attempts, failure) -> None:
        self.emit("quarantine", ts, tid, key=key, attempts=attempts,
                  failure=failure)

    def degrade_serial(self, ts, rebuilds) -> None:
        self.emit("degrade_serial", ts, rebuilds=rebuilds)

    # -- sweep server (tid = client id) ------------------------------------
    def request_accepted(self, ts, tid, request, cells) -> None:
        self.emit("request_accepted", ts, tid, request=request, cells=cells)

    def cell_dedup(self, ts, tid, key, waiters) -> None:
        self.emit("cell_dedup", ts, tid, key=key, waiters=waiters)

    def cell_served(self, ts, key, source, waiters) -> None:
        self.emit("cell_served", ts, key=key, source=source, waiters=waiters)

    def client_evicted(self, ts, tid, reason) -> None:
        self.emit("client_evicted", ts, tid, reason=reason)


class NullTracer(_TracerAPI):
    """The disabled tracer: every emission is a no-op, nothing is stored.

    Components hold ``NULL_TRACER`` by default and guard emission with
    ``if tracer.enabled:``, so the cost of disabled tracing is a single
    attribute check per already-rare lifecycle event.
    """

    enabled = False
    #: immutable empties so "zero emission" is checkable, not just assumed.
    events: tuple = ()
    emitted = 0
    truncated = False

    def emit(self, kind: str, ts: int, tid: int = 0, **args) -> None:
        return None


#: Shared disabled tracer (stateless, safe to share between machines).
NULL_TRACER = NullTracer()


class Tracer(_TracerAPI):
    """Enabled tracer: a bounded ring buffer of :class:`TraceEvent`."""

    enabled = True

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        #: total events ever emitted (>= len(events) once truncating).
        self.emitted = 0

    def emit(self, kind: str, ts: int, tid: int = 0, **args) -> None:
        self.emitted += 1
        self._ring.append(
            TraceEvent(ts=ts, kind=kind, tid=tid,
                       args=tuple(sorted(args.items())))
        )

    @property
    def events(self) -> list[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._ring)

    @property
    def truncated(self) -> bool:
        """True when the ring dropped events (emitted more than capacity)."""
        return self.emitted > self.capacity

    def clear(self) -> None:
        self._ring.clear()
        self.emitted = 0

    def __len__(self) -> int:
        return len(self._ring)
