"""Profile-guided method inlining (with reversible bookkeeping).

The inliner serves two masters:

- the **baseline** compiler uses it exactly as a classic JVM server
  compiler would: inline small hot callees, guard virtual calls with a
  receiver-class test and an out-of-line fallback call;
- the **atomic-region** compiler uses it for the paper's Step 1,
  "aggressively inline methods" (§4), with a threshold several times
  larger, relying on region formation to *un-inline* any method that is not
  fully encapsulated in an atomic region (Step 5 / Algorithm 1's pruning) —
  which is why every inline records enough state to be reversed.

Partial inlining falls out: keep the hot path of an aggressively-inlined
callee inside the region, assert away its cold paths, and restore the real
call on the non-speculative path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.build import build_ir
from ..ir.cfg import Block, Graph
from ..ir.ops import Kind, Node
from ..lang.bytecode import Method, Program
from ..runtime.profile import ProfileStore
from .transform import isolate_op_in_block, scale_counts
from .uses import replace_all_uses


@dataclass
class InlineConfig:
    """Inlining policy knobs."""

    #: max callee size in bytecode instructions.
    threshold: int = 40
    #: multiplier applied for the paper's "aggressive inlining" configs.
    aggressive_factor: int = 5
    aggressive: bool = False
    max_depth: int = 4
    #: stop growing the caller beyond this many HIR ops.
    budget_ops: int = 4000
    #: receiver share needed to guard-inline a virtual call.
    mono_share: float = 0.99
    #: call sites (method, bytecode_pc) to treat as monomorphic regardless
    #: of profile — the paper's §6.1 jython `getitem` experiment.
    force_monomorphic: frozenset = frozenset()

    def effective_threshold(self) -> int:
        return self.threshold * (self.aggressive_factor if self.aggressive else 1)


@dataclass
class InlinedMethod:
    """Bookkeeping for one inlined call site (reversible)."""

    callee: Method
    ctx: tuple                      # inline context of the spliced blocks
    call_block: Block               # block that held (and can re-hold) the call
    continuation: Block             # control continues here after the callee
    entry_block: Block              # first spliced callee block
    saved_call: Node                # original CALL/VCALL node, detached
    result_phi: Node | None         # phi merging return values (in continuation)
    fallback_block: Block | None    # virtual-guard fallback (None for static)
    is_virtual: bool = False

    def blocks_of(self, graph: Graph) -> list[Block]:
        """All blocks belonging to this inline (nested inlines included)."""
        return [
            b for b in graph.blocks
            if len(b.inline_ctx) >= len(self.ctx)
            and b.inline_ctx[: len(self.ctx)] == self.ctx
            and b.region_id is None
        ]


@dataclass
class InlineResult:
    inlined: list[InlinedMethod] = field(default_factory=list)
    rejected_polymorphic: list[tuple[str, int]] = field(default_factory=list)

    def by_innermost_first(self) -> list[InlinedMethod]:
        return sorted(self.inlined, key=lambda im: len(im.ctx), reverse=True)


class Inliner:
    """Worklist inliner over a caller graph."""

    def __init__(
        self,
        program: Program,
        profiles: ProfileStore,
        config: InlineConfig | None = None,
    ) -> None:
        self.program = program
        self.profiles = profiles
        self.config = config if config is not None else InlineConfig()
        self._site_counter = 0

    # -- public -----------------------------------------------------------
    def run(self, graph: Graph, root_method: Method) -> InlineResult:
        """Inline eligible call sites in ``graph`` until a fixpoint."""
        result = InlineResult()
        changed = True
        while changed and graph.node_count() < self.config.budget_ops:
            changed = False
            for block in list(graph.blocks):
                if block.region_id is not None:
                    continue
                for node in list(block.ops):
                    if node.kind not in (Kind.CALL, Kind.VCALL):
                        continue
                    if node.block is None:
                        continue
                    inlined = self._try_inline(graph, root_method, node, result)
                    if inlined:
                        changed = True
                        break
                if changed:
                    break
        return result

    # -- policy -------------------------------------------------------------
    def _context_chain(self, block: Block, root: Method) -> list[str]:
        names = [root.qualified_name]
        names.extend(name for (_, name) in block.inline_ctx)
        return names

    def _try_inline(
        self, graph: Graph, root: Method, call: Node, result: InlineResult
    ) -> bool:
        cfg = self.config
        block = call.block
        if block.count <= 0:
            return False
        if len(block.inline_ctx) >= cfg.max_depth:
            return False

        if call.kind is Kind.CALL:
            callee = self.program.resolve_static(call.attrs["method"])
            expected_cls = None
        else:
            site = self._site_profile(call)
            forced = (
                call.attrs.get("src_method"),
                call.bytecode_pc,
            ) in cfg.force_monomorphic
            if site is None:
                return False
            dominant, share = site.dominant()
            if dominant is None:
                return False
            # The default partial inliner "will not partially inline methods
            # containing polymorphic calls" (paper §6.1); the aggressive
            # configuration trusts the class guard as long as the dominant
            # receiver share is high enough (rare other receivers become
            # guard failures — aborts — instead of inline blockers).
            polymorphic_block = site.appears_polymorphic() and not cfg.aggressive
            if not forced and (share < cfg.mono_share or polymorphic_block):
                result.rejected_polymorphic.append(
                    (call.attrs["method"], call.bytecode_pc or -1)
                )
                return False
            expected_cls = dominant
            callee = self.program.resolve_virtual(dominant, call.attrs["method"])

        if len(callee.instrs) > cfg.effective_threshold():
            return False
        if callee.qualified_name in self._context_chain(block, root):
            return False  # recursion

        self._inline_site(graph, call, callee, expected_cls, result)
        return True

    def _site_profile(self, call: Node):
        src = call.attrs.get("src_method")
        if src is None or call.bytecode_pc is None:
            return None
        if src not in self.profiles:
            return None
        return self.profiles.method(src).call_sites.get(call.bytecode_pc)

    # -- mechanics ---------------------------------------------------------
    def _inline_site(
        self,
        graph: Graph,
        call: Node,
        callee: Method,
        expected_cls: str | None,
        result: InlineResult,
    ) -> None:
        self._site_counter += 1
        site_id = self._site_counter
        call_block, cont = isolate_op_in_block(graph, call)
        ctx = call_block.inline_ctx + ((site_id, callee.qualified_name),)

        # Build a fresh copy of the callee body with its own profile.
        callee_prof = (
            self.profiles.method(callee.qualified_name)
            if callee.qualified_name in self.profiles
            else None
        )
        body = build_ir(callee, callee_prof)
        for b in body.blocks:
            b.inline_ctx = ctx
            for node in b.ops:
                if node.kind in (Kind.CALL, Kind.VCALL):
                    node.attrs.setdefault("src_method", callee.qualified_name)
        if callee_prof is not None and callee_prof.invocations > 0:
            scale_counts(body.blocks, call_block.count / callee_prof.invocations)

        # Substitute arguments for PARAM nodes.
        args = list(call.operands)
        entry = body.entry
        assert entry is not None
        for node in list(entry.ops):
            if node.kind is Kind.PARAM:
                replace_all_uses(body, node, args[node.attrs["index"]])
                entry.remove_op(node)

        graph.blocks.extend(body.blocks)

        # Result phi in the continuation (created while cont has no preds).
        graph.replace_succ(call_block, 0, entry)  # call_block -> callee entry
        result_phi = Node(Kind.PHI)
        result_phi.block = cont
        cont.phis.append(result_phi)

        # RETURNs become jumps to the continuation feeding the phi.
        for b in list(body.blocks):
            term = b.terminator
            if term is None or term.kind is not Kind.RETURN:
                continue
            value = term.operands[0] if term.operands else None
            if value is None:
                value = Node(Kind.CONST_NULL)
                b.append(value)
            graph.clear_terminator(b)
            graph.set_terminator(b, Node(Kind.JUMP), [])
            graph._link(b, cont, phi_values=[result_phi_value(cont, result_phi, value)])

        # Detach the call op and route its uses through the phi.
        call_block.remove_op(call)
        replace_all_uses(graph, call, result_phi)

        fallback_block = None
        if expected_cls is not None:
            fallback_block = self._install_guard(
                graph, call, call_block, cont, result_phi, entry, expected_cls
            )

        result.inlined.append(
            InlinedMethod(
                callee=callee,
                ctx=ctx,
                call_block=call_block,
                continuation=cont,
                entry_block=entry,
                saved_call=call,
                result_phi=result_phi,
                fallback_block=fallback_block,
                is_virtual=expected_cls is not None,
            )
        )

    def _install_guard(
        self,
        graph: Graph,
        call: Node,
        call_block: Block,
        cont: Block,
        result_phi: Node,
        entry: Block,
        expected_cls: str,
    ) -> Block:
        """Turn ``call_block`` into a class-guard diamond.

        Hot side: the inlined body.  Cold side: a fallback block performing
        the original virtual call.  Edge counts make the fallback cold so
        region formation converts the guard into an assert.
        """
        receiver = call.operands[0]
        classof = Node(Kind.CLASSOF, [receiver], bytecode_pc=call.bytecode_pc)
        expected = Node(Kind.CONST_CLASS, cls=expected_cls)
        call_block.append(expected)
        call_block.append(classof)

        fallback = graph.new_block(src_pc=call_block.src_pc)
        fallback.inline_ctx = call_block.inline_ctx
        fallback.count = 0.0
        clone = Node(
            Kind.VCALL,
            list(call.operands),
            bytecode_pc=call.bytecode_pc,
            **{k: v for k, v in call.attrs.items()},
        )
        fallback.append(clone)

        # call_block currently JUMPs to the callee entry; replace with the
        # guard branch: eq -> inline path, ne -> fallback.
        graph.clear_terminator(call_block)
        branch = Node(Kind.BRANCH, [classof, expected], cond="eq",
                      bytecode_pc=call.bytecode_pc)
        branch.attrs["edge_counts"] = (call_block.count, 0.0)
        graph.set_terminator(call_block, branch, [])
        graph._link(call_block, entry)
        graph._link(call_block, fallback)
        graph.set_terminator(fallback, Node(Kind.JUMP), [])
        graph._link(fallback, cont, phi_values=[clone])
        return fallback


def result_phi_value(cont: Block, phi: Node, value: Node) -> Node:
    """Identity helper kept for readability at the call site."""
    return value


def un_inline(graph: Graph, im: InlinedMethod) -> None:
    """Reverse one inline: restore the saved call on the original blocks.

    Used by region formation Step 5 ("replace inlined methods on
    non-speculative paths with calls") and by Algorithm 1's pruning of
    methods that cannot be fully encapsulated.  Speculative *replicas* of
    the callee body (blocks with ``region_id`` set) are untouched.
    """
    call_block = im.call_block
    cont = im.continuation

    graph.clear_terminator(call_block)
    # Drop guard scaffolding (CLASSOF / CONST_CLASS) if present.
    for node in list(call_block.ops):
        if node.kind in (Kind.CLASSOF, Kind.CONST_CLASS):
            call_block.remove_op(node)
    im.saved_call.block = call_block
    call_block.ops.append(im.saved_call)

    # Route the continuation's result phi (wherever it now lives) from the
    # restored call.  Region formation may have interposed a region entry
    # block in front of `cont`; follow the forwarding pointer if so.
    target = cont if cont.region_entry is None else cont.region_entry
    phi_values = [
        im.saved_call if phi is im.result_phi else _reuse_operand(phi)
        for phi in target.phis
    ]
    graph.set_terminator(call_block, Node(Kind.JUMP), [])
    graph._link(call_block, target, phi_values=phi_values)
    graph.prune_unreachable()


def _reuse_operand(phi: Node) -> Node:
    """Fallback phi value for an edge we re-add during un-inlining.

    Only the result phi is expected at the join; any other phi must already
    be degenerate (this indicates a formation-order bug otherwise, which the
    verifier will catch since the reused operand may not dominate).
    """
    return phi.operands[0]
