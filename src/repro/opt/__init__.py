"""Classical optimization passes (non-speculative formulations)."""

from .constfold import fold_constants
from .dce import eliminate_dead_code
from .gvn import value_number
from .inline import (
    InlineConfig,
    InlineResult,
    InlinedMethod,
    Inliner,
    un_inline,
)
from .loadelim import eliminate_loads
from .pipeline import PipelineStats, optimize
from .simplify import simplify_cfg
from .transform import isolate_op_in_block, scale_counts, split_block_after
from .uses import UseTracker, compute_uses, replace_all_uses

__all__ = [
    "InlineConfig",
    "InlineResult",
    "InlinedMethod",
    "Inliner",
    "PipelineStats",
    "UseTracker",
    "compute_uses",
    "eliminate_dead_code",
    "eliminate_loads",
    "fold_constants",
    "isolate_op_in_block",
    "optimize",
    "replace_all_uses",
    "scale_counts",
    "simplify_cfg",
    "split_block_after",
    "un_inline",
    "value_number",
]
