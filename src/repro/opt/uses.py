"""Def-use utilities shared by optimization passes."""

from __future__ import annotations

from collections import defaultdict

from ..ir.cfg import Graph
from ..ir.ops import Node


def compute_uses(graph: Graph) -> dict[int, list[Node]]:
    """Map each value node id to the list of nodes using it."""
    uses: dict[int, list[Node]] = defaultdict(list)
    for block in graph.blocks:
        for node in block.all_nodes():
            for operand in node.operands:
                uses[operand.id].append(node)
    return uses


def replace_all_uses(graph: Graph, old: Node, new: Node) -> int:
    """Replace every use of ``old`` with ``new``; returns replacement count."""
    count = 0
    for block in graph.blocks:
        for node in block.all_nodes():
            if old in node.operands:
                node.operands = [new if op is old else op for op in node.operands]
                count += 1
    return count


class UseTracker:
    """Incrementally-maintained def-use chains for a worklist pass."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.uses: dict[int, list[Node]] = compute_uses(graph)

    def users_of(self, node: Node) -> list[Node]:
        return [u for u in self.uses.get(node.id, ()) if u.block is not None]

    def replace(self, old: Node, new: Node) -> list[Node]:
        """Rewrite uses of ``old`` to ``new``; returns the affected users."""
        users = self.users_of(old)
        for user in users:
            user.operands = [new if op is old else op for op in user.operands]
        self.uses.setdefault(new.id, []).extend(users)
        self.uses[old.id] = []
        return users

    def note_new_node(self, node: Node) -> None:
        for operand in node.operands:
            self.uses.setdefault(operand.id, []).append(node)
