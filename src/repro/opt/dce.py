"""Dead code elimination.

Mark-and-sweep from effectful roots.  As the paper prescribes for asserts
(§4): "Only dead code elimination needs to be informed that these operations
are essential and should not be removed" — ASSERT is a root here despite
producing no value, as are safety checks (they trap), stores, calls,
monitor and region operations, and safepoints.

Unused pure computations, loads, phis, and unused allocations (our guest has
no finalizers or allocation hooks) are swept.
"""

from __future__ import annotations

from ..ir.cfg import Graph
from ..ir.ops import Kind, Node

#: Kinds that are always live regardless of uses.
_ROOT_KINDS = frozenset({
    Kind.PUTFIELD, Kind.ASTORE, Kind.CALL, Kind.VCALL,
    Kind.MONITOR_ENTER, Kind.MONITOR_EXIT, Kind.SLE_ENTER,
    Kind.CHECK_NULL, Kind.CHECK_BOUNDS, Kind.CHECK_DIV0, Kind.CHECK_CLASS,
    Kind.ASSERT, Kind.AREGION_END, Kind.SAFEPOINT,
    Kind.FAA, Kind.CAS, Kind.LL, Kind.SC,
})


def eliminate_dead_code(graph: Graph) -> int:
    """Remove unused value computations; returns the number removed."""
    live: set[int] = set()
    worklist: list[Node] = []

    for block in graph.blocks:
        for node in block.ops:
            if node.kind in _ROOT_KINDS:
                worklist.append(node)
        if block.terminator is not None:
            worklist.append(block.terminator)

    while worklist:
        node = worklist.pop()
        if node.id in live:
            continue
        live.add(node.id)
        worklist.extend(node.operands)

    removed = 0
    for block in graph.blocks:
        for node in list(block.phis):
            if node.id not in live:
                block.remove_op(node)
                removed += 1
        for node in list(block.ops):
            if node.id not in live and node.kind not in _ROOT_KINDS:
                block.remove_op(node)
                removed += 1
    return removed
