"""CFG surgery shared by inlining and region formation."""

from __future__ import annotations

from ..ir.cfg import Block, Graph
from ..ir.ops import Kind, Node


def split_block_after(graph: Graph, block: Block, index: int) -> Block:
    """Split ``block`` after ``ops[index]``; returns the continuation block.

    The continuation inherits the terminator, out-edges (phi alignment in
    successors is preserved by pointer-swapping the pred entries), profile
    count, and context tags.  ``block`` is left terminator-less; the caller
    must install one.
    """
    cont = graph.new_block(src_pc=block.src_pc)
    cont.count = block.count
    cont.inline_ctx = block.inline_ctx
    cont.region_id = block.region_id

    cont.ops = block.ops[index + 1:]
    block.ops = block.ops[: index + 1]
    for node in cont.ops:
        node.block = cont

    term = block.terminator
    if term is not None:
        term.block = cont
        cont.terminator = term
        block.terminator = None
        cont.succs = block.succs
        block.succs = []
        # Pointer-swap pred entries in successors: edges keep their index.
        for succ_index, succ in enumerate(cont.succs):
            succ.preds = [
                (cont, idx) if (p is block and idx == succ_index) else (p, idx)
                for (p, idx) in succ.preds
            ]
    return cont


def isolate_op_in_block(graph: Graph, node: Node) -> tuple[Block, Block]:
    """Rearrange so ``node`` is the *only* op in its own block.

    Returns ``(call_block, continuation)``.  Used by the inliner: an
    isolated call block has exactly one in-edge and one out-edge, which
    makes inlining — and, crucially for the paper's Step 5, *un*-inlining —
    a local rewiring.
    """
    block = node.block
    assert block is not None
    index = block.ops.index(node)

    cont = split_block_after(graph, block, index)
    # Move the node itself into a dedicated block.
    call_block = graph.new_block(src_pc=block.src_pc)
    call_block.count = block.count
    call_block.inline_ctx = block.inline_ctx
    block.ops.pop()  # remove `node` from block
    node.block = call_block
    call_block.ops.append(node)

    graph.set_terminator(block, Node(Kind.JUMP), [call_block])
    graph.set_terminator(call_block, Node(Kind.JUMP), [cont])
    return call_block, cont


def scale_counts(blocks: list[Block], factor: float) -> None:
    """Scale profile counts (blocks and branch edges) by ``factor``."""
    for block in blocks:
        block.count *= factor
        term = block.terminator
        if term is not None and "edge_counts" in term.attrs:
            term.attrs["edge_counts"] = tuple(
                c * factor for c in term.attrs["edge_counts"]
            )
