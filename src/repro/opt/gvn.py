"""Global value numbering (dominator-tree scoped).

Deduplicates pure computations, safety checks, and region asserts: a check
dominated by an identical check is redundant and removed, exactly the
mechanism by which the paper's atomic regions eliminate "67 branches with
redundant conditions" (Figure 1) — once cold paths are asserts, the second
``check_null(chunk)`` / ``c_length = chunk.length`` of Figure 3(b) is a
textbook dominated redundancy.

Pure expressions can never be killed, so dominator scoping is sound for
them.  Memory loads need path-sensitive kill information and are handled by
:mod:`repro.opt.loadelim` instead.
"""

from __future__ import annotations

from ..ir.cfg import Block, Graph
from ..ir.dom import dominator_tree
from ..ir.ops import (
    CHECK_KINDS,
    COMMUTATIVE_KINDS,
    Kind,
    Node,
    PURE_KINDS,
)
from .uses import UseTracker

#: Kinds that participate in value numbering as *values*.
_NUMBERED_VALUE_KINDS = (PURE_KINDS - {Kind.PARAM}) | {Kind.CONST, Kind.CONST_NULL}

#: Kinds numbered as *facts*: a dominated duplicate is simply deleted.
_NUMBERED_FACT_KINDS = CHECK_KINDS | {Kind.ASSERT}


def _value_key(node: Node) -> tuple | None:
    kind = node.kind
    if kind is Kind.CONST:
        return (kind, node.attrs["imm"])
    if kind is Kind.CONST_NULL:
        return (kind,)
    if kind is Kind.CONST_CLASS:
        return (kind, node.attrs["cls"])
    if kind in _NUMBERED_VALUE_KINDS:
        operand_ids = [op.id for op in node.operands]
        if kind in COMMUTATIVE_KINDS:
            operand_ids.sort()
        return (kind, tuple(operand_ids))
    return None


def _fact_key(node: Node) -> tuple | None:
    kind = node.kind
    if kind not in _NUMBERED_FACT_KINDS:
        return None
    operand_ids = tuple(op.id for op in node.operands)
    if kind is Kind.ASSERT:
        return (kind, node.attrs["cond"], operand_ids)
    if kind is Kind.CHECK_CLASS:
        return (kind, node.attrs["cls"], operand_ids)
    return (kind, operand_ids)


class _ScopedTable:
    """Hash table with dominator-scope push/pop."""

    def __init__(self) -> None:
        self._table: dict[tuple, Node] = {}
        self._undo: list[list[tuple[tuple, Node | None]]] = []

    def push(self) -> None:
        self._undo.append([])

    def pop(self) -> None:
        for key, old in reversed(self._undo.pop()):
            if old is None:
                del self._table[key]
            else:
                self._table[key] = old

    def lookup(self, key: tuple) -> Node | None:
        return self._table.get(key)

    def insert(self, key: tuple, node: Node) -> None:
        self._undo[-1].append((key, self._table.get(key)))
        self._table[key] = node


def value_number(graph: Graph) -> int:
    """Run GVN over ``graph``; returns the number of nodes eliminated."""
    tree = dominator_tree(graph)
    tracker = UseTracker(graph)
    table = _ScopedTable()
    removed = 0

    def visit(block: Block) -> int:
        count = 0
        table.push()
        for node in list(block.ops):
            key = _value_key(node)
            if key is not None:
                existing = table.lookup(key)
                if existing is not None:
                    tracker.replace(node, existing)
                    block.remove_op(node)
                    count += 1
                else:
                    table.insert(key, node)
                continue
            fact = _fact_key(node)
            if fact is not None:
                if table.lookup(fact) is not None:
                    block.remove_op(node)
                    count += 1
                else:
                    table.insert(fact, node)
        for child in tree.children[block.id]:
            count += visit(child)
        table.pop()
        return count

    if tree.order:
        removed = visit(tree.order[0])
    return removed
