"""The optimization pipeline: ordering and iteration of passes.

Mirrors the paper's framing: the passes themselves are non-speculative
formulations (GVN, constant folding, load elimination, DCE, CFG
simplification); when region formation has already replaced cold paths with
asserts, running this unchanged pipeline performs speculative,
path-qualified optimization "for free" (§4: "no optimizations needed to be
modified to start exploiting the optimization opportunity exposed by the
atomic regions").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.cfg import Graph
from ..ir.verify import verify_graph
from .constfold import fold_constants
from .dce import eliminate_dead_code
from .gvn import value_number
from .loadelim import eliminate_loads
from .simplify import simplify_cfg


@dataclass
class PipelineStats:
    """Counts of what each pass accomplished (for tests and reports)."""

    folded: int = 0
    numbered: int = 0
    loads_removed: int = 0
    dead_removed: int = 0
    cfg_rounds: int = 0
    iterations: int = 0
    per_round: list[dict] = field(default_factory=list)


def optimize(graph: Graph, max_rounds: int = 4, verify: bool = False) -> PipelineStats:
    """Run the full pass pipeline to a (bounded) fixpoint."""
    stats = PipelineStats()
    for _ in range(max_rounds):
        round_stats = {
            "folded": fold_constants(graph),
            "cfg": simplify_cfg(graph),
            "numbered": value_number(graph),
            "loads": eliminate_loads(graph),
            "dead": eliminate_dead_code(graph),
        }
        round_stats["cfg"] += simplify_cfg(graph)
        if verify:
            verify_graph(graph)
        stats.folded += round_stats["folded"]
        stats.cfg_rounds += round_stats["cfg"]
        stats.numbered += round_stats["numbered"]
        stats.loads_removed += round_stats["loads"]
        stats.dead_removed += round_stats["dead"]
        stats.iterations += 1
        stats.per_round.append(round_stats)
        if not any(round_stats.values()):
            break
    return stats
