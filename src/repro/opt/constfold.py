"""Constant folding, algebraic simplification, and check elimination.

This is the pass that performs the paper's Figure 3 transformation: after
superblock-style replication the second ``++i`` is constant-folded into the
first, and statically-satisfiable checks disappear.  It is deliberately a
*non-speculative* formulation — inside atomic regions it becomes speculative
purely because region formation already removed the cold paths.
"""

from __future__ import annotations

from ..ir.cfg import Graph
from ..ir.ops import ARITH_KINDS, Kind, Node
from ..runtime.interpreter import guest_div, guest_mod, wrap_int
from ..runtime.errors import GuestArithmeticError
from .uses import UseTracker

_FOLDERS = {
    Kind.ADD: lambda a, b: wrap_int(a + b),
    Kind.SUB: lambda a, b: wrap_int(a - b),
    Kind.MUL: lambda a, b: wrap_int(a * b),
    Kind.DIV: guest_div,
    Kind.MOD: guest_mod,
    Kind.AND: lambda a, b: wrap_int(a & b),
    Kind.OR: lambda a, b: wrap_int(a | b),
    Kind.XOR: lambda a, b: wrap_int(a ^ b),
    Kind.SHL: lambda a, b: wrap_int(a << (b & 63)),
    Kind.SHR: lambda a, b: wrap_int(a >> (b & 63)),
}

#: Node kinds whose result is provably non-null.
_NON_NULL_KINDS = frozenset({Kind.NEW, Kind.NEWARR})


def fold_constants(graph: Graph) -> int:
    """Worklist-driven folding; returns the number of nodes rewritten."""
    tracker = UseTracker(graph)
    worklist: list[Node] = [
        node for block in graph.blocks for node in block.all_nodes()
    ]
    folded = 0
    while worklist:
        node = worklist.pop()
        if node.block is None:  # already removed
            continue
        replacement = _simplify(node, graph)
        if replacement is None:
            removed = _try_remove_check(node)
            if removed:
                folded += 1
            continue
        block = node.block
        if replacement.block is None:
            # Fresh constant: place it right where the folded node was.
            index = block.ops.index(node)
            block.insert_op(index, replacement)
            tracker.note_new_node(replacement)
        users = tracker.replace(node, replacement)
        block.remove_op(node)
        worklist.extend(users)
        folded += 1
    folded += _fold_branches_to_jumps(graph)
    return folded


def _const_of(node: Node) -> int | None:
    return node.attrs["imm"] if node.kind is Kind.CONST else None


def _simplify(node: Node, graph: Graph) -> Node | None:
    """Return a replacement value for ``node`` (existing node or new CONST)."""
    kind = node.kind
    if kind in ARITH_KINDS:
        a, b = node.operands
        ca, cb = _const_of(a), _const_of(b)
        if ca is not None and cb is not None:
            try:
                return Node(Kind.CONST, imm=_FOLDERS[kind](ca, cb))
            except GuestArithmeticError:
                return None  # leave the trap to runtime semantics
        # Algebraic identities (safe over wrapped 64-bit ints).
        if kind is Kind.ADD:
            if ca == 0:
                return b
            if cb == 0:
                return a
        elif kind is Kind.SUB:
            if cb == 0:
                return a
            if a is b:
                return Node(Kind.CONST, imm=0)
        elif kind is Kind.MUL:
            if ca == 1:
                return b
            if cb == 1:
                return a
            if ca == 0 or cb == 0:
                return Node(Kind.CONST, imm=0)
        elif kind is Kind.AND:
            if a is b:
                return a
            if ca == 0 or cb == 0:
                return Node(Kind.CONST, imm=0)
            if ca == -1:
                return b
            if cb == -1:
                return a
        elif kind is Kind.OR:
            if a is b:
                return a
            if ca == 0:
                return b
            if cb == 0:
                return a
        elif kind is Kind.XOR:
            if a is b:
                return Node(Kind.CONST, imm=0)
            if ca == 0:
                return b
            if cb == 0:
                return a
        elif kind in (Kind.SHL, Kind.SHR):
            if cb == 0:
                return a
        return None
    if kind is Kind.PHI:
        first = node.operands[0] if node.operands else None
        if first is not None and all(
            op is first or op is node for op in node.operands
        ):
            return first
    if kind is Kind.ALEN and node.operands[0].kind is Kind.NEWARR:
        return node.operands[0].operands[0]  # length of fresh array
    if kind is Kind.CLASSOF and node.operands[0].kind is Kind.NEW:
        return Node(Kind.CONST_CLASS, cls=node.operands[0].attrs["cls"])
    return None


def _try_remove_check(node: Node) -> bool:
    """Delete checks that are statically satisfied."""
    kind = node.kind
    block = node.block
    if block is None:
        return False
    if kind is Kind.CHECK_NULL:
        ref = node.operands[0]
        if ref.kind in _NON_NULL_KINDS:
            block.remove_op(node)
            return True
    elif kind is Kind.CHECK_DIV0:
        value = _const_of(node.operands[0])
        if value is not None and value != 0:
            block.remove_op(node)
            return True
    elif kind is Kind.CHECK_BOUNDS:
        length, index = (_const_of(op) for op in node.operands)
        if length is not None and index is not None and 0 <= index < length:
            block.remove_op(node)
            return True
    elif kind is Kind.CHECK_CLASS:
        got = node.operands[0]
        if got.kind is Kind.CONST_CLASS and got.attrs["cls"] == node.attrs["cls"]:
            block.remove_op(node)
            return True
    elif kind is Kind.ASSERT:
        from ..runtime.interpreter import compare

        a, b = node.operands
        values = []
        for op in (a, b):
            if op.kind is Kind.CONST:
                values.append(op.attrs["imm"])
            elif op.kind is Kind.CONST_NULL:
                values.append(None)
            else:
                return False
        if not compare(node.attrs["cond"], values[0], values[1]):
            block.remove_op(node)  # provably never fires
            return True
    return False


def _fold_branches_to_jumps(graph: Graph) -> int:
    """Constant branches are finished off by simplify_cfg; count them here
    so pipelines know another simplify round is worthwhile."""
    from .simplify import _branch_constant

    count = 0
    for block in graph.blocks:
        term = block.terminator
        if term is not None and term.kind is Kind.BRANCH:
            if _branch_constant(term) is not None:
                count += 1
    return count
