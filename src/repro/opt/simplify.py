"""CFG simplification: constant branch folding, block merging, jump threading.

Run between other passes to keep the graph small; after constant folding it
is what actually deletes the cold sides of branches whose conditions became
constant (the paper's observation that, inside atomic regions, "elimination
of cold paths enabled the compiler to simplify an indirect branch to a
conditional branch, eliminate branches via constant propagation previously
inhibited by cold control flow", §6).
"""

from __future__ import annotations

from ..ir.cfg import Block, Graph
from ..ir.ops import Kind, Node
from ..runtime.interpreter import compare
from .uses import replace_all_uses


def simplify_cfg(graph: Graph) -> int:
    """Iterate local simplifications to a fixpoint; returns change count."""
    total = 0
    changed = True
    while changed:
        changed = False
        changed |= bool(_fold_constant_branches(graph))
        changed |= bool(_same_target_branches(graph))
        changed |= bool(graph.prune_unreachable())
        changed |= bool(_merge_straightline(graph))
        changed |= bool(_thread_empty_blocks(graph))
        changed |= bool(_simplify_single_pred_phis(graph))
        if changed:
            total += 1
    return total


def _branch_constant(term: Node) -> bool | None:
    """Statically evaluate a BRANCH's condition if possible."""
    a, b = term.operands
    const_a = a.kind is Kind.CONST or a.kind is Kind.CONST_NULL
    const_b = b.kind is Kind.CONST or b.kind is Kind.CONST_NULL
    if const_a and const_b:
        va = a.attrs.get("imm") if a.kind is Kind.CONST else None
        vb = b.attrs.get("imm") if b.kind is Kind.CONST else None
        return compare(term.attrs["cond"], va, vb)
    if a is b and term.attrs["cond"] in ("eq", "le", "ge"):
        return True
    if a is b and term.attrs["cond"] in ("ne", "lt", "gt"):
        return False
    return None


def _fold_constant_branches(graph: Graph) -> int:
    changed = 0
    for block in list(graph.blocks):
        term = block.terminator
        if term is None or term.kind is not Kind.BRANCH:
            continue
        verdict = _branch_constant(term)
        if verdict is None:
            continue
        index = 0 if verdict else 1
        target = block.succs[index]
        values = _edge_phi_values(block, index, target)
        graph.clear_terminator(block)
        jump = Node(Kind.JUMP, bytecode_pc=term.bytecode_pc)
        graph.set_terminator(block, jump, [])
        graph._link(block, target, phi_values=values)
        changed += 1
    return changed


def _same_target_branches(graph: Graph) -> int:
    """BRANCH with both successors equal (and equal phi inputs) -> JUMP."""
    changed = 0
    for block in list(graph.blocks):
        term = block.terminator
        if term is None or term.kind is not Kind.BRANCH:
            continue
        if block.succs[0] is not block.succs[1]:
            continue
        succ = block.succs[0]
        values = _edge_phi_values(block, 0, succ)
        other = _edge_phi_values(block, 1, succ)
        if values != other:
            continue  # the two edges feed different phi inputs
        graph.clear_terminator(block)
        graph.set_terminator(block, Node(Kind.JUMP, bytecode_pc=term.bytecode_pc), [])
        graph._link(block, succ, phi_values=values)
        changed += 1
    return changed


def _edge_phi_values(pred: Block, succ_index: int, succ: Block) -> list[Node]:
    for pos, (p, idx) in enumerate(succ.preds):
        if p is pred and idx == succ_index:
            return [phi.operands[pos] for phi in succ.phis]
    raise ValueError("edge not found")


def _merge_straightline(graph: Graph) -> int:
    """Merge B into A when A ends in JUMP->B and B has A as its only pred."""
    changed = 0
    for block in list(graph.blocks):
        term = block.terminator
        if term is None or term.kind is not Kind.JUMP:
            continue
        succ = block.succs[0]
        if succ is graph.entry or succ is block or len(succ.preds) != 1:
            continue
        # Fold single-pred phis into direct references.
        for phi in list(succ.phis):
            replace_all_uses(graph, phi, phi.operands[0])
            succ.phis.remove(phi)
            phi.block = None
        # Splice ops.
        for node in succ.ops:
            node.block = block
        block.ops.extend(succ.ops)
        succ.ops = []
        # Move the terminator and edges.
        succ_term = succ.terminator
        succ_succs = list(succ.succs)
        succ_phi_values = [
            _edge_phi_values(succ, i, s) for i, s in enumerate(succ_succs)
        ]
        graph.clear_terminator(succ)
        graph.clear_terminator(block)
        graph.set_terminator(block, succ_term, [])
        for target, values in zip(succ_succs, succ_phi_values):
            graph._link(block, target, phi_values=values)
        if block.count == 0:
            block.count = succ.count
        graph.blocks.remove(succ)
        changed += 1
    return changed


def _thread_empty_blocks(graph: Graph) -> int:
    """Bypass blocks that are empty except for a JUMP (no phis, no ops)."""
    changed = 0
    for block in list(graph.blocks):
        if block is graph.entry or block.phis or block.ops:
            continue
        term = block.terminator
        if term is None or term.kind is not Kind.JUMP:
            continue
        succ = block.succs[0]
        if succ is block:
            continue
        values = _edge_phi_values(block, 0, succ)
        # Retarget each pred edge straight to succ with the same phi values.
        for pred, succ_index in list(block.preds):
            if pred.terminator.kind is Kind.REGION_BEGIN:
                continue  # keep region entry edges structurally intact
            graph.replace_succ(pred, succ_index, succ, phi_values=list(values))
            changed += 1
    return changed


def _simplify_single_pred_phis(graph: Graph) -> int:
    """Phi in a single-pred block (or with all-same operands) -> operand."""
    changed = 0
    for block in graph.blocks:
        for phi in list(block.phis):
            if not phi.operands:
                continue
            first = phi.operands[0]
            same = all(op is first or op is phi for op in phi.operands)
            if len(block.preds) == 1 or same:
                replace_all_uses(graph, phi, first)
                block.phis.remove(phi)
                phi.block = None
                changed += 1
    return changed
